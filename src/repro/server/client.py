"""Sync and asyncio clients for the networked KV service.

Both clients speak the frame protocol of :mod:`repro.server.protocol`
and share three behaviours:

* **Pipelining** — many requests can be in flight on one connection;
  the server answers in request order, and the echoed request id is
  asserted on receipt.  The sync client exposes an explicit
  :meth:`SyncClient.pipeline` batch; the async client pipelines
  naturally whenever calls are issued concurrently
  (``asyncio.gather(c.put(...), c.get(...))``).
* **Backpressure handling** — a ``STALLED`` response (the server
  refusing a write while compaction catches up, paper §I) is retried
  with the server-suggested delay, a bounded number of times, before
  :class:`ServerBusyError` is raised to the caller.
* **Connection resilience** (opt-in) — pass a
  :class:`repro.server.retry.RetryPolicy` and connection failures
  (refused, reset, cut mid-frame, timed out) are retried with seeded
  jittered backoff, transparently reconnecting and re-running the
  hello negotiation so the ack level and trace flag survive the new
  connection.  Reads retry freely; writes follow the policy's
  idempotence rule.  A :class:`repro.server.retry.CircuitBreaker`
  (shared per endpoint) makes a down server fail fast instead of
  burning a connect timeout per call.
* **Typed errors** — protocol violations raise
  :class:`ProtocolError`, engine-side failures raise
  :class:`ServerError`; a missing key is simply ``None``.
* **Distributed tracing** — pass an enabled
  :class:`repro.obs.Tracer` and, once :meth:`SyncClient.hello`
  negotiates protocol ≥ 2.1, every request records a ``client:<OP>``
  span and carries its ``(trace_id, span_id)`` in the frame head, so
  the server's dispatch/DB/replication spans nest under it in a merged
  Chrome trace (``repro.obs.merge_chrome_traces``).
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from collections import deque
from typing import Optional

from ..obs import NULL_TRACER, current_trace_context, new_trace_id, trace_context
from . import protocol as P
from .protocol import ProtocolError
from .retry import CircuitBreaker, CircuitOpenError, RetryPolicy

__all__ = [
    "ClientError",
    "ServerError",
    "ServerBusyError",
    "ProtocolError",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryPolicy",
    "SyncClient",
    "AsyncClient",
]

#: Default bound on STALLED retries before giving up.
DEFAULT_MAX_RETRIES = 20


class ClientError(RuntimeError):
    """Base class for client-visible request failures."""


class ServerError(ClientError):
    """The server reported BAD_REQUEST / SERVER_ERROR / SHUTTING_DOWN."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"{P.STATUS_NAMES.get(status, status)}: {message}")
        self.status = status


class ServerBusyError(ClientError):
    """Writes kept being refused with STALLED past the retry budget."""


def _error_text(body: bytes) -> str:
    try:
        message, _ = P.decode_lp(body)
        return message.decode(errors="backslashreplace")
    except ProtocolError:
        return ""


def _stall_delay_s(body: bytes) -> float:
    try:
        from ..codec.varint import decode_varint64

        retry_ms, _ = decode_varint64(body, 0)
        return retry_ms / 1e3
    except ValueError:
        return 0.025


class _ResponseHandler:
    """Shared decode of response frames into python values."""

    @staticmethod
    def unwrap(response: P.Response):
        """OK/NOT_FOUND → body/None; errors → raise.  STALLED is
        handled by the retry loops before this point."""
        if response.status == P.ST_OK:
            return response.body
        if response.status == P.ST_NOT_FOUND:
            return None
        raise ServerError(response.status, _error_text(response.body))

    @staticmethod
    def result(opcode: int, response: P.Response):
        """Opcode-aware decode: GET → value bytes, PUT/DELETE → None,
        PING → echoed payload, NOT_FOUND → None."""
        body = _ResponseHandler.unwrap(response)
        if body is None:
            return None
        if opcode == P.OP_GET:
            return P.decode_lp(body)[0]
        if opcode in (P.OP_PUT, P.OP_DELETE):
            return None
        return body


# ------------------------------------------------------------ sync
class SyncClient:
    """Blocking socket client.

    Not thread-safe: use one client per thread (the load generator in
    :mod:`repro.bench.netbench` does exactly that).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        max_frame_bytes: int = P.MAX_FRAME_BYTES,
        tracer=None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics=None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.max_frame_bytes = max_frame_bytes
        self.retry_policy = retry_policy
        self.breaker = breaker
        self._metrics = metrics
        self._jitter = retry_policy.rng() if retry_policy is not None else None
        self.retries = 0  # observable connection-retry count
        self._hello_done = False
        self._hello_ack_level: Optional[int] = None
        self._sock: Optional[socket.socket] = None
        self._recv_buf = b""
        self._next_id = 0
        self.stall_retries = 0  # observable back-off count
        # `is None`, not truthiness: an enabled-but-empty Tracer has
        # len() == 0 and would be falsy.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: True after hello() confirms the server speaks ≥ 2.1; trace
        #: ids are only put on the wire once this is set, so a traced
        #: client still talks cleanly to older servers.
        self.trace_negotiated = False
        self._connect()

    # ------------------------------------------------------- transport
    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _connect(self) -> None:
        """(Re)establish the connection; renegotiates a done hello so
        per-connection state (ack level, trace flag) carries over."""
        if self.breaker is not None and not self.breaker.allow():
            self._count("client.circuit_open")
            raise CircuitOpenError(
                f"circuit open for {self.host}:{self.port}"
            )
        connect_timeout = (
            self.retry_policy.connect_timeout_s
            if self.retry_policy is not None
            else self.timeout
        )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=connect_timeout
            )
        except OSError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._recv_buf = b""
        if self.breaker is not None:
            self.breaker.record_success()
        if self._hello_done:
            request_id = self._take_id()
            self._send(
                P.encode_request(
                    P.OP_PING,
                    request_id,
                    P.encode_hello_body(ack_level=self._hello_ack_level),
                )
            )
            body = _ResponseHandler.unwrap(self._recv_response(request_id))
            negotiated = P.decode_hello_ack(body)
            version = negotiated if negotiated is not None else (1, 0)
            self.trace_negotiated = version >= (2, 1)

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        self._sock = None
        self._recv_buf = b""

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, frame: bytes) -> None:
        self._sock.sendall(frame)

    def _recv_exact(self, n: int) -> bytes:
        while len(self._recv_buf) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._recv_buf += chunk
        data, self._recv_buf = self._recv_buf[:n], self._recv_buf[n:]
        return data

    def _recv_response(self, expect_id: int) -> P.Response:
        length = P.frame_length(self._recv_exact(4), self.max_frame_bytes)
        payload = P.decode_frame(length, self._recv_exact(length + 4))
        response = P.decode_response(payload)
        if response.request_id != expect_id:
            raise ProtocolError(
                f"response id {response.request_id} != request id {expect_id}"
            )
        return response

    def _call(self, opcode: int, body: bytes = b"") -> P.Response:
        """One request/response, retrying STALLED with back-off.

        With tracing negotiated and enabled, the whole exchange
        (including stall retries) is one ``client:<OP>`` span whose
        span id rides in the request head.
        """
        if not (self.trace_negotiated and self.tracer.enabled):
            return self._call_raw(opcode, body, None, None)
        ctx = current_trace_context()
        trace_id = ctx[0] if ctx is not None else new_trace_id()
        with trace_context(trace_id, ctx[1] if ctx is not None else 0):
            name = P.OPCODE_NAMES.get(opcode, hex(opcode))
            with self.tracer.span(f"client:{name}", cat="client"):
                # Inside the span the context's span id is *our* span:
                # the server's dispatch span becomes our child.
                _, span_id = current_trace_context()
                return self._call_raw(opcode, body, trace_id, span_id)

    def _call_raw(
        self,
        opcode: int,
        body: bytes,
        trace_id: Optional[int],
        span_id: Optional[int],
    ) -> P.Response:
        attempts = 0
        while True:
            response = self._exchange(opcode, body, trace_id, span_id)
            if response.status != P.ST_STALLED:
                return response
            attempts += 1
            self.stall_retries += 1
            if attempts > self.max_retries:
                raise ServerBusyError(
                    f"write refused {attempts} times (compaction stall)"
                )
            time.sleep(_stall_delay_s(response.body))

    def _exchange(
        self,
        opcode: int,
        body: bytes,
        trace_id: Optional[int],
        span_id: Optional[int],
    ) -> P.Response:
        """One request/response over the socket, healing connection
        failures per the retry policy (no policy = old raise-through
        behaviour).  Reads retry freely; a write whose frame may have
        reached the server only retries when the policy allows resends
        (see :class:`repro.server.retry.RetryPolicy`)."""
        attempt = 0
        while True:
            sent = connected = False
            try:
                if self._sock is None:
                    self._connect()  # breaker-checked; may raise
                connected = True
                request_id = self._take_id()
                self._send(
                    P.encode_request(
                        opcode, request_id, body,
                        trace_id=trace_id, span_id=span_id,
                    )
                )
                sent = True
                response = self._recv_response(request_id)
            except CircuitOpenError:
                raise  # fail fast: no backoff against a known-down node
            except OSError:
                self._teardown()
                # _connect records its own breaker failures.
                if connected and self.breaker is not None:
                    self.breaker.record_failure()
                policy = self.retry_policy
                retryable = (
                    policy is not None
                    and attempt + 1 < policy.max_attempts
                    and (
                        opcode not in P.WRITE_OPCODES
                        or not sent
                        or policy.resend_writes
                    )
                )
                if not retryable:
                    raise
                attempt += 1
                self.retries += 1
                self._count("client.retry")
                time.sleep(policy.backoff_s(attempt, self._jitter.uniform()))
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return response

    # ------------------------------------------------------------- ops
    def ping(self, payload: bytes = b"") -> bytes:
        return _ResponseHandler.unwrap(self._call(P.OP_PING, payload))

    def hello(self, ack_level: Optional[int] = None) -> tuple[int, int]:
        """Negotiate the protocol version over PING.

        Returns the server's ``(major, minor)``; a pre-versioning
        server echoes the hello verbatim and is reported as ``(1, 0)``.
        ``ack_level`` optionally pins how many follower acks writes on
        this connection must collect (-1 = majority) — ignored by
        servers without a replication hub.
        """
        # Remember the negotiation so a policy-driven reconnect can
        # replay it: ack-gated durability must survive the new socket.
        self._hello_done = True
        self._hello_ack_level = ack_level
        body = self.ping(P.encode_hello_body(ack_level=ack_level))
        negotiated = P.decode_hello_ack(body)
        version = negotiated if negotiated is not None else (1, 0)
        self.trace_negotiated = version >= (2, 1)
        return version

    def get(self, key: bytes) -> Optional[bytes]:
        return _ResponseHandler.result(
            P.OP_GET, self._call(P.OP_GET, P.encode_lp(key))
        )

    def put(self, key: bytes, value: bytes) -> None:
        _ResponseHandler.unwrap(
            self._call(P.OP_PUT, P.encode_lp(key) + P.encode_lp(value))
        )

    def delete(self, key: bytes) -> None:
        _ResponseHandler.unwrap(self._call(P.OP_DELETE, P.encode_lp(key)))

    def batch(self, ops) -> int:
        """Apply [("put", k, v) | ("delete", k), ...] atomically."""
        body = P.encode_batch_body(ops)
        result = _ResponseHandler.unwrap(self._call(P.OP_BATCH, body))
        from ..codec.varint import decode_varint64

        return decode_varint64(result, 0)[0]

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        limit: int = 0,
        reverse: bool = False,
    ) -> tuple[list[tuple[bytes, bytes]], bool]:
        """Range read → ``(pairs, truncated_by_server_cap)``."""
        body = P.encode_scan_body(start, end, limit, reverse)
        result = _ResponseHandler.unwrap(self._call(P.OP_SCAN, body))
        return P.decode_scan_result(result)

    def stats(self) -> dict:
        """Server + engine counters as a dict (see KVServer._stats_dict)."""
        import json

        result = _ResponseHandler.unwrap(self._call(P.OP_STATS))
        blob, _ = P.decode_lp(result)
        return json.loads(blob)

    def compact(self) -> int:
        """Trigger a full manual compaction; returns compactions run."""
        result = _ResponseHandler.unwrap(self._call(P.OP_COMPACT))
        from ..codec.varint import decode_varint64

        return decode_varint64(result, 0)[0]

    def flush(self) -> None:
        """Force the server's memtable to disk (protocol ≥ 2 only)."""
        _ResponseHandler.unwrap(self._call(P.OP_FLUSH))

    def promote(self, min_epoch: int = 0) -> int:
        """Promote the serving node to primary, online (protocol ≥ 2.2).

        Returns the node's new replication epoch.  ``min_epoch`` fences
        deterministically: the node's epoch becomes at least that value,
        and a node already at or past it acks without bumping again
        (idempotent retry).
        """
        result = _ResponseHandler.unwrap(
            self._call(P.OP_PROMOTE, P.encode_promote_body(min_epoch))
        )
        return P.decode_promote_ack(result)

    # ------------------------------------------------------- telemetry
    def metrics(self, fmt: str = "json"):
        """Scrape the server's live metrics (protocol ≥ 2.1).

        ``fmt="prom"`` returns Prometheus exposition text (str);
        ``fmt="json"`` returns the parsed registry snapshot dict
        (``{"counters": ..., "gauges": ..., "histograms": ...}``).
        """
        wire = (
            P.METRICS_FMT_PROMETHEUS if fmt == "prom" else P.METRICS_FMT_JSON
        )
        result = _ResponseHandler.unwrap(
            self._call(P.OP_METRICS, P.encode_metrics_body(wire))
        )
        blob, _ = P.decode_lp(result)
        if fmt == "prom":
            return blob.decode()
        payload = json.loads(blob)
        return payload.get("metrics", payload)

    def trace_dump(self) -> dict:
        """The server's Chrome trace (its tracer must be enabled)."""
        result = _ResponseHandler.unwrap(self._call(P.OP_TRACE))
        blob, _ = P.decode_lp(result)
        return json.loads(blob)

    # ------------------------------------------------------ pipelining
    def pipeline(self) -> "SyncPipeline":
        """Batch several requests into one socket round trip::

            with client.pipeline() as p:
                p.put(b"a", b"1")
                p.get(b"a")
            results = p.results    # [None, b"1"]
        """
        return SyncPipeline(self)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "SyncClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SyncPipeline:
    """Deferred requests flushed in one write, read back in order.

    STALLED responses inside a pipeline are retried individually after
    the whole pipeline has been read (order within the pipeline is
    preserved in ``results``).
    """

    def __init__(self, client: SyncClient) -> None:
        self._client = client
        self._queued: list[tuple[int, int, bytes]] = []  # (opcode, id, frame-body)
        self.results: list = []

    # Each queue method mirrors the SyncClient call of the same name.
    def ping(self, payload: bytes = b"") -> None:
        self._queue(P.OP_PING, payload)

    def get(self, key: bytes) -> None:
        self._queue(P.OP_GET, P.encode_lp(key))

    def put(self, key: bytes, value: bytes) -> None:
        self._queue(P.OP_PUT, P.encode_lp(key) + P.encode_lp(value))

    def delete(self, key: bytes) -> None:
        self._queue(P.OP_DELETE, P.encode_lp(key))

    def _queue(self, opcode: int, body: bytes) -> None:
        request_id = self._client._take_id()
        self._queued.append((opcode, request_id, body))

    def flush(self) -> list:
        """Send every queued request, collect responses in order."""
        client = self._client
        if not self._queued:
            return self.results
        if client._sock is None:
            client._connect()
        client._send(
            b"".join(
                P.encode_request(opcode, request_id, body)
                for opcode, request_id, body in self._queued
            )
        )
        retry: list[tuple[int, int, bytes]] = []
        slots: list = []
        time_hint = 0.025
        for opcode, request_id, body in self._queued:
            response = client._recv_response(request_id)
            if response.status == P.ST_STALLED:
                retry.append((opcode, len(slots), body))
                slots.append(None)
                time_hint = _stall_delay_s(response.body)
            else:
                slots.append(_ResponseHandler.result(opcode, response))
        for opcode, slot, body in retry:
            time.sleep(time_hint)
            slots[slot] = _ResponseHandler.result(
                opcode, client._call(opcode, body)
            )
        self._queued.clear()
        self.results.extend(slots)
        return self.results

    def __enter__(self) -> "SyncPipeline":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.flush()


# ----------------------------------------------------------- asyncio
class AsyncClient:
    """Asyncio client with transparent pipelining.

    Every request is written immediately and a future is parked in a
    FIFO; one reader task resolves futures as in-order responses
    arrive.  Concurrent callers therefore share the connection with
    full pipelining and zero extra machinery::

        client = await AsyncClient.connect(host, port)
        await asyncio.gather(*(client.put(k, v) for k, v in items))
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_retries: int = DEFAULT_MAX_RETRIES,
        max_frame_bytes: int = P.MAX_FRAME_BYTES,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.max_retries = max_retries
        self.max_frame_bytes = max_frame_bytes
        self.retry_policy = retry_policy
        self._jitter = retry_policy.rng() if retry_policy is not None else None
        self.retries = 0  # observable connection-retry count
        # Reconnection needs the address; only set by connect(), so a
        # client built from raw streams never retries connections.
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._conn_timeout: Optional[float] = None
        self._conn_gen = 0
        self._conn_lock = asyncio.Lock()
        self._next_id = 0
        self._pending: deque[tuple[int, asyncio.Future]] = deque()
        self._reader_task = asyncio.create_task(self._read_loop())
        self._closed = False
        self.stall_retries = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, timeout: Optional[float] = 30.0, **kwargs
    ) -> "AsyncClient":
        # wait_for bounds connection establishment: an unresponsive
        # (e.g. black-holed) endpoint must not hang the caller forever.
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        client = cls(reader, writer, **kwargs)
        client._host, client._port, client._conn_timeout = host, port, timeout
        return client

    # ------------------------------------------------------- transport
    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(4)
                length = P.frame_length(header, self.max_frame_bytes)
                payload = P.decode_frame(
                    length, await self._reader.readexactly(length + 4)
                )
                response = P.decode_response(payload)
                if not self._pending:
                    raise ProtocolError("unsolicited response frame")
                expect_id, future = self._pending.popleft()
                if response.request_id != expect_id:
                    raise ProtocolError(
                        f"response id {response.request_id} != {expect_id}"
                    )
                if not future.cancelled():
                    future.set_result(response)
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            self._fail_pending(
                ConnectionError(f"connection lost: {exc}")
            )
        except ProtocolError as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: Exception) -> None:
        while self._pending:
            _, future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)

    async def _call(self, opcode: int, body: bytes = b"") -> P.Response:
        attempt = 0
        while True:
            try:
                return await self._call_once(opcode, body)
            except (OSError, asyncio.IncompleteReadError):
                # Once written the frame may have reached the server, so
                # a write only retries when the policy allows resends.
                policy = self.retry_policy
                retryable = (
                    policy is not None
                    and self._host is not None
                    and not self._closed
                    and attempt + 1 < policy.max_attempts
                    and (
                        opcode not in P.WRITE_OPCODES or policy.resend_writes
                    )
                )
                if not retryable:
                    raise
                gen = self._conn_gen
                attempt += 1
                self.retries += 1
                await asyncio.sleep(
                    policy.backoff_s(attempt, self._jitter.uniform())
                )
                await self._reconnect(gen)

    async def _reconnect(self, gen: int) -> None:
        """Replace the dead connection (no-op if another caller already
        did: ``gen`` is the connection generation the caller saw fail)."""
        async with self._conn_lock:
            if self._closed:
                raise ClientError("client is closed")
            if self._conn_gen != gen:
                return
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._fail_pending(ConnectionError("reconnecting"))
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:
                pass
            timeout = (
                self.retry_policy.connect_timeout_s
                if self.retry_policy is not None
                else self._conn_timeout
            )
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self._host, self._port), timeout
            )
            self._reader_task = asyncio.create_task(self._read_loop())
            self._conn_gen += 1

    async def _call_once(self, opcode: int, body: bytes) -> P.Response:
        attempts = 0
        while True:
            if self._closed:
                raise ClientError("client is closed")
            self._next_id += 1
            request_id = self._next_id
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending.append((request_id, future))
            self._writer.write(P.encode_request(opcode, request_id, body))
            await self._writer.drain()
            response = await future
            if response.status != P.ST_STALLED:
                return response
            attempts += 1
            self.stall_retries += 1
            if attempts > self.max_retries:
                raise ServerBusyError(
                    f"write refused {attempts} times (compaction stall)"
                )
            await asyncio.sleep(_stall_delay_s(response.body))

    # ------------------------------------------------------------- ops
    async def ping(self, payload: bytes = b"") -> bytes:
        return _ResponseHandler.unwrap(await self._call(P.OP_PING, payload))

    async def get(self, key: bytes) -> Optional[bytes]:
        return _ResponseHandler.result(
            P.OP_GET, await self._call(P.OP_GET, P.encode_lp(key))
        )

    async def put(self, key: bytes, value: bytes) -> None:
        _ResponseHandler.unwrap(
            await self._call(P.OP_PUT, P.encode_lp(key) + P.encode_lp(value))
        )

    async def delete(self, key: bytes) -> None:
        _ResponseHandler.unwrap(
            await self._call(P.OP_DELETE, P.encode_lp(key))
        )

    async def batch(self, ops) -> int:
        from ..codec.varint import decode_varint64

        result = _ResponseHandler.unwrap(
            await self._call(P.OP_BATCH, P.encode_batch_body(ops))
        )
        return decode_varint64(result, 0)[0]

    async def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        limit: int = 0,
        reverse: bool = False,
    ) -> tuple[list[tuple[bytes, bytes]], bool]:
        result = _ResponseHandler.unwrap(
            await self._call(P.OP_SCAN, P.encode_scan_body(start, end, limit, reverse))
        )
        return P.decode_scan_result(result)

    async def stats(self) -> dict:
        import json

        result = _ResponseHandler.unwrap(await self._call(P.OP_STATS))
        blob, _ = P.decode_lp(result)
        return json.loads(blob)

    async def compact(self) -> int:
        from ..codec.varint import decode_varint64

        result = _ResponseHandler.unwrap(await self._call(P.OP_COMPACT))
        return decode_varint64(result, 0)[0]

    async def flush(self) -> None:
        _ResponseHandler.unwrap(await self._call(P.OP_FLUSH))

    async def promote(self, min_epoch: int = 0) -> int:
        """Async counterpart of :meth:`SyncClient.promote`."""
        result = _ResponseHandler.unwrap(
            await self._call(P.OP_PROMOTE, P.encode_promote_body(min_epoch))
        )
        return P.decode_promote_ack(result)

    async def metrics(self, fmt: str = "json"):
        """Async counterpart of :meth:`SyncClient.metrics`."""
        wire = (
            P.METRICS_FMT_PROMETHEUS if fmt == "prom" else P.METRICS_FMT_JSON
        )
        result = _ResponseHandler.unwrap(
            await self._call(P.OP_METRICS, P.encode_metrics_body(wire))
        )
        blob, _ = P.decode_lp(result)
        if fmt == "prom":
            return blob.decode()
        payload = json.loads(blob)
        return payload.get("metrics", payload)

    async def trace_dump(self) -> dict:
        """Async counterpart of :meth:`SyncClient.trace_dump`."""
        result = _ResponseHandler.unwrap(await self._call(P.OP_TRACE))
        blob, _ = P.decode_lp(result)
        return json.loads(blob)

    async def hello(self, ack_level: Optional[int] = None) -> tuple[int, int]:
        """Async counterpart of :meth:`SyncClient.hello`."""
        body = _ResponseHandler.unwrap(
            await self._call(P.OP_PING, P.encode_hello_body(ack_level=ack_level))
        )
        negotiated = P.decode_hello_ack(body)
        return negotiated if negotiated is not None else (1, 0)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_pending(ClientError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except OSError:  # pragma: no cover - covers ConnectionError
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
