"""Asyncio TCP server exposing a :class:`repro.db.DB` over the wire.

Architecture
============

One asyncio event loop owns all sockets; the blocking engine calls
(``DB.put`` … ``DB.compact_range``) are dispatched to a small thread
pool via ``run_in_executor`` (the DB serialises internally with its
own lock, so pool width bounds *queueing*, not data races).  Per
connection, a reader coroutine decodes frames and a writer coroutine
emits responses **in request order** (Redis-style pipelining) from a
bounded queue.

Backpressure, two layers
========================

* **Per-connection**: the response queue is bounded
  (``max_inflight_per_conn``); when a client pipelines more requests
  than that, the reader coroutine stops consuming its socket and TCP
  flow control pushes back to the sender.
* **Engine stalls**: the paper's write pause (§I) — L0 backed up,
  ``DB._maybe_stall`` would block the writer — is surfaced as an
  explicit ``STALLED`` response carrying a suggested retry delay,
  instead of silently parking a worker thread inside the engine.
  Clients back off and retry (:mod:`repro.server.client` does this
  automatically), which makes compaction pauses *observable* at the
  network edge — exactly what the paper's pipelined compaction is
  meant to shorten.  In cluster mode (serving a
  :class:`repro.cluster.ShardedDB`) the rejection is routed: only
  writes whose keys land on a stalled shard see ``STALLED``; traffic
  to healthy shards flows on.

Graceful shutdown drains in-flight requests, flushes the memtable,
runs compactions to quiescence, and closes the DB, so the directory
passes ``repro.db.verify.verify_db`` afterwards.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from ..analysis.locksan import make_lock
from ..db.db import DB
from ..devices.faults import TransientIOError
from ..lsm.wal import WriteBatch
from ..obs import NULL_EVENTS, NULL_TRACER, trace_context
from ..obs.export import render_json, render_prometheus
from .metrics import ServerMetrics
from . import protocol as P

__all__ = ["ServerConfig", "KVServer", "ServerThread", "serve_forever"]

_log = logging.getLogger("repro.server")

#: Snapshot streaming chunk size (well under MAX_FRAME_BYTES).
_SNAP_CHUNK_BYTES = 1 * 1024 * 1024


@dataclass
class ServerConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port from KVServer.port
    worker_threads: int = 4
    #: Pipelined requests admitted per connection before the server
    #: stops reading that socket (TCP backpressure).
    max_inflight_per_conn: int = 32
    max_frame_bytes: int = P.MAX_FRAME_BYTES
    #: Hard cap on entries returned by one SCAN (result is flagged
    #: truncated when it hits).
    scan_limit_max: int = 65536
    #: Suggested client back-off carried in STALLED responses.
    stall_retry_ms: int = 25
    #: Grace period for live connections to finish during stop().
    drain_timeout_s: float = 10.0
    #: Refuse write opcodes (follower replicas serve reads only).
    read_only: bool = False
    #: Default follower acks a write must collect before OK
    #: (0 = primary durability only, -1 = cluster majority); a client
    #: hello can override per connection.
    repl_acks: int = 0
    #: How long a write waits for follower acks before STALLED.
    repl_ack_timeout_s: float = 5.0

    def validate(self) -> None:
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        if self.max_inflight_per_conn < 1:
            raise ValueError("max_inflight_per_conn must be >= 1")
        if self.scan_limit_max < 1:
            raise ValueError("scan_limit_max must be >= 1")
        if self.repl_acks < -1:
            raise ValueError("repl_acks must be >= -1 (-1 = majority)")
        if self.repl_ack_timeout_s <= 0:
            raise ValueError("repl_ack_timeout_s must be > 0")


class KVServer:
    """The networked KV service; one instance wraps one open engine.

    ``db`` is anything DB-shaped: a :class:`repro.db.DB` or a
    :class:`repro.cluster.ShardedDB` (cluster mode — same wire
    protocol, shard-aware stall routing, STATS grows a ``cluster``
    section with per-shard rollups).
    """

    def __init__(
        self,
        db: DB,
        config: Optional[ServerConfig] = None,
        metrics: Optional[ServerMetrics] = None,
        own_db: bool = True,
        hub=None,
        follower=None,
    ) -> None:
        """``hub`` (a :class:`repro.replication.ReplicationHub`) makes
        this server a replication primary: it accepts REPL_SUBSCRIBE,
        streams WAL records/snapshots, and gates writes on follower
        acks.  ``follower`` (a :class:`repro.replication.Follower`)
        marks it a replica: its status is surfaced via STATS and it is
        stopped before the DB drains on shutdown."""
        self.db = db
        self.config = config or ServerConfig()
        self.config.validate()
        self.metrics = metrics or ServerMetrics()
        self.own_db = own_db
        self.hub = hub
        self.follower = follower
        obs = getattr(db, "obs", None)
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._events = getattr(obs, "events", None) or NULL_EVENTS
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing = False
        self._pool: Optional[ThreadPoolExecutor] = None
        self._promote_lock = make_lock("server.promote")

    # ---------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.worker_threads, thread_name_prefix="kv-worker"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ephemeral port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def stop(self) -> None:
        """Graceful shutdown: drain, flush, compact, close the DB."""
        if self._server is None:
            return
        self._closing = True
        if self.hub is not None:
            # Wake every subscriber ship loop with a GOODBYE so
            # follower tails exit cleanly instead of seeing a reset.
            self.hub.shutdown("server shutting down")
        if self.follower is not None:
            # Stop tailing the primary before the local DB drains; use
            # the named worker pool, not the loop's anonymous default
            # executor, so the blocking stop is attributable in traces.
            await asyncio.get_running_loop().run_in_executor(
                self._pool, self.follower.stop
            )
        self._server.close()
        await self._server.wait_closed()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._pool, self._drain_db)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def _drain_db(self) -> None:
        """Flush the memtable and run compactions to quiescence."""
        if getattr(self.db, "_closed", False):
            return
        self.db.flush()
        if self.db._background:
            self.db.wait_for_compactions()
        if self.own_db:
            self.db.close()

    def swap_db(self, new_db) -> None:
        """Switch the serving engine (follower snapshot install)."""
        self.db = new_db

    # ----------------------------------------------------------- failover
    def promote_to_primary(self, min_epoch: int = 0) -> int:
        """Promote this node to replication primary, online.

        The whole-node counterpart of ``dbtool promote`` (which needs
        the DB closed): stops the follower loop if one is running,
        bumps the replication epoch to ``max(current + 1, min_epoch)``,
        lifts read-only mode, and attaches a
        :class:`~repro.replication.ReplicationHub` so other replicas
        can re-parent here.  The epoch bump fences the old primary —
        its hub refuses subscriptions from higher-epoch followers, so
        acks dry up and ack-gated writes stall rather than split-brain.

        Idempotent under retries when ``min_epoch`` is given: a node
        already primary at or past it acks without bumping again.
        Returns the node's (possibly unchanged) replication epoch.
        """
        with self._promote_lock:
            already_primary = (
                self.follower is None and not self.config.read_only
            )
            if (
                already_primary
                and min_epoch
                and self.db.repl_epoch >= min_epoch
            ):
                return self.db.repl_epoch
            follower = self.follower
            if follower is not None:
                # Clear the attribute first so STATS flips to primary
                # and stop() is never re-entered by a racing promote.
                self.follower = None
                follower.stop()
            new_epoch = max(self.db.repl_epoch + 1, min_epoch)
            self.db.set_repl_epoch(new_epoch)
            self.config.read_only = False
            if self.hub is None:
                from ..replication.hub import ReplicationHub

                self.hub = ReplicationHub(self.db)
            obs = getattr(self.db, "obs", None)
            if obs is not None:
                obs.metrics.counter("failover.promoted").inc()
            if self._events.enabled:
                self._events.emit(
                    "failover.promoted",
                    epoch=new_epoch,
                    was_follower=follower is not None,
                )
            return new_epoch

    # -------------------------------------------------------- connections
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self.metrics.connection_opened()
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.max_inflight_per_conn
        )
        writer_task = asyncio.create_task(self._write_responses(queue, writer))
        # Mutable per-connection state: the hello handshake stores the
        # connection's negotiated write ack level here.
        state: dict = {"writer_task": writer_task}
        try:
            await self._read_requests(reader, writer, queue, state)
        finally:
            try:
                await queue.put(None)
                await writer_task
            except asyncio.CancelledError:  # forced stop mid-drain
                writer_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # covers ConnectionError
                pass
            self.metrics.connection_closed()
            self._conn_tasks.discard(task)

    async def _read_requests(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        queue: asyncio.Queue,
        state: dict,
    ) -> None:
        while True:
            try:
                header = await reader.readexactly(4)
                length = P.frame_length(header, self.config.max_frame_bytes)
                payload = P.decode_frame(
                    length, await reader.readexactly(length + 4)
                )
                request = P.decode_request(payload)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away
            except P.ProtocolError:
                # The stream is unframed garbage from here on: there is
                # no way to resynchronise, so drop the connection.
                self.metrics.record_protocol_error()
                return
            if request.opcode == P.OP_REPL_SUBSCRIBE:
                # The connection inverts into a push stream: flush the
                # pipelined responses, then this coroutine owns the
                # socket until the subscription ends.
                await queue.put(None)
                await state["writer_task"]
                await self._serve_subscription(reader, writer, request, state)
                return
            # Bounded queue: blocks when the pipeline is full, which
            # stops reading this socket until responses drain.
            await queue.put(
                asyncio.create_task(
                    self._handle_request(
                        request, P.FRAME_OVERHEAD + len(payload), state
                    )
                )
            )

    async def _write_responses(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        # Keeps consuming until the sentinel even after a send failure,
        # so the reader's queue.put never deadlocks on a dead peer.
        broken = False
        while True:
            task = await queue.get()
            if task is None:
                return
            try:
                frame = await task
            except Exception:  # pragma: no cover - handler is total
                _log.exception("request task failed outside the handler")
                continue
            if broken:
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except OSError:  # covers ConnectionError
                broken = True

    # ----------------------------------------------------------- dispatch
    async def _handle_request(
        self, request: P.Request, bytes_in: int, state: dict
    ) -> bytes:
        """Execute one request; returns the encoded response frame."""
        t0 = time.perf_counter()
        status = P.ST_SERVER_ERROR
        body = b""
        try:
            if self._closing:
                status, body = P.ST_SHUTTING_DOWN, P.encode_lp(
                    b"server shutting down"
                )
            elif self._stalled_for(request):
                # The engine would park this write until compaction
                # catches up; tell the client to back off instead.
                self.metrics.record_stall_rejection()
                status = P.ST_STALLED
                body = P.encode_varint64(self.config.stall_retry_ms)
            else:
                loop = asyncio.get_running_loop()
                status, body = await loop.run_in_executor(
                    self._pool, self._execute, request, state
                )
        except P.ProtocolError as exc:
            status, body = P.ST_BAD_REQUEST, P.encode_lp(str(exc).encode())
        except TransientIOError:
            # Retryable storage hiccup (the engine already exhausted
            # its own retries): tell the client to back off and retry
            # — same contract as a compaction stall, not a hard error.
            self.metrics.record_stall_rejection()
            status = P.ST_STALLED
            body = P.encode_varint64(self.config.stall_retry_ms)
        except Exception as exc:  # engine failure: report, keep serving
            status, body = P.ST_SERVER_ERROR, P.encode_lp(
                f"{type(exc).__name__}: {exc}".encode()
            )
        frame = P.encode_response(status, request.request_id, body)
        duration = time.perf_counter() - t0
        self.metrics.record(
            request.opcode,
            duration,
            bytes_in,
            len(frame),
            error=status
            in (P.ST_BAD_REQUEST, P.ST_SERVER_ERROR, P.ST_SHUTTING_DOWN),
        )
        if self._events.enabled:
            self._events.slow_op(
                request.opcode_name,
                duration,
                status=P.STATUS_NAMES.get(status, status),
                request_id=request.request_id,
            )
        return frame

    def _stalled_for(self, request: P.Request) -> bool:
        """Would this request hit a write stall right now?

        Against a sharded engine only the shard(s) the request's keys
        route to count — one backed-up shard must not reject writes
        bound for healthy shards — so the keys are peeked out of the
        request body and passed to ``write_stalled(keys=...)``.
        Undecodable bodies report no stall; ``_execute`` raises the
        proper BAD_REQUEST for them.
        """
        if request.opcode not in P.WRITE_OPCODES:
            return False
        if self.hub is not None and not self.hub.write_admissible():
            # Replication admission control: every follower lags too
            # far behind; refuse writes until the stream catches up.
            return True
        if getattr(self.db, "shard_for_key", None) is None:
            return self.db.write_stalled()
        try:
            keys = P.write_request_keys(request)
        except P.ProtocolError:
            return False
        return self.db.write_stalled(keys=keys)

    def _execute(self, request: P.Request, state: dict) -> tuple[int, bytes]:
        """Run one opcode against the DB (worker thread).

        A request carrying 2.1 trace context binds it to this worker
        thread for the duration: the ``server:<OP>`` dispatch span and
        every engine span recorded underneath (``db:<OP>``, flush,
        write-stall, ``repl-ack-wait``) get stamped with the client's
        trace id and chain parent span ids (see
        :func:`repro.obs.trace_context`).  Requests without context pay
        nothing.
        """
        if request.trace_id is None:
            return self._execute_op(request, state)
        with trace_context(request.trace_id, request.span_id or 0):
            with self._tracer.span(
                f"server:{request.opcode_name}", cat="server"
            ):
                return self._execute_op(request, state)

    def _execute_op(
        self, request: P.Request, state: dict
    ) -> tuple[int, bytes]:
        op, body = request.opcode, request.body
        if op == P.OP_PING:
            hello = P.decode_hello_body(body)
            if hello is None:
                return P.ST_OK, body  # pre-versioning client: pure echo
            major, minor, ack_level = hello
            if major > P.PROTOCOL_MAJOR:
                return P.ST_BAD_REQUEST, P.encode_lp(
                    f"unsupported protocol major {major} (this server "
                    f"speaks {P.PROTOCOL_MAJOR}.{P.PROTOCOL_MINOR})".encode()
                )
            # Remembered for feature gating: e.g. only >= 2.2 peers get
            # SHIP_HEARTBEAT frames on a replication stream.
            state["peer_version"] = (major, minor)
            if ack_level is not None:
                state["ack_level"] = ack_level
            return P.ST_OK, P.encode_hello_ack()
        if op == P.OP_PROMOTE:
            # Deliberately allowed on a read-only replica: promotion is
            # how a follower *stops* being read-only (failover).
            new_epoch = self.promote_to_primary(P.decode_promote_body(body))
            return P.ST_OK, P.encode_promote_ack(new_epoch)
        if self.config.read_only and op in P.WRITE_OPCODES:
            return P.ST_BAD_REQUEST, P.encode_lp(
                b"read-only replica: send writes to the primary"
            )
        if op in (P.OP_REPL_SHIP, P.OP_REPL_ACK):
            raise P.ProtocolError(
                "replication stream opcode outside a REPL_SUBSCRIBE stream"
            )
        if op == P.OP_GET:
            key, _ = P.decode_lp(body)
            with self._tracer.span("db:GET", cat="db"):
                value = self.db.get(key)
            if value is None:
                return P.ST_NOT_FOUND, b""
            return P.ST_OK, P.encode_lp(value)
        if op == P.OP_PUT:
            key, pos = P.decode_lp(body)
            value, _ = P.decode_lp(body, pos)
            with self._tracer.span("db:PUT", cat="db"):
                self.db.put(key, value)
            return self._write_done(state, b"")
        if op == P.OP_DELETE:
            key, _ = P.decode_lp(body)
            with self._tracer.span("db:DELETE", cat="db"):
                self.db.delete(key)
            return self._write_done(state, b"")
        if op == P.OP_BATCH:
            batch = WriteBatch()
            ops = P.decode_batch_body(body)
            for entry in ops:
                if entry[0] == "put":
                    batch.put(entry[1], entry[2])
                else:
                    batch.delete(entry[1])
            with self._tracer.span("db:BATCH", cat="db", n=len(ops)):
                self.db.write(batch)
            return self._write_done(state, P.encode_varint64(len(ops)))
        if op == P.OP_FLUSH:
            self.db.flush()
            return P.ST_OK, b""
        if op == P.OP_SCAN:
            start, end, limit, reverse = P.decode_scan_body(body)
            cap = self.config.scan_limit_max
            effective = min(limit, cap) if limit else cap
            scan = (
                self.db.scan_reverse(start, end)
                if reverse
                else self.db.scan(start, end)
            )
            pairs = []
            truncated = False
            for pair in scan:
                if len(pairs) >= effective:
                    # Only the server cap counts as truncation; a
                    # client-requested limit is just satisfied.
                    truncated = not limit or effective < limit
                    break
                pairs.append(pair)
            return P.ST_OK, P.encode_scan_result(pairs, truncated)
        if op == P.OP_STATS:
            return P.ST_OK, P.encode_lp(
                json.dumps(self._stats_dict(), sort_keys=True).encode()
            )
        if op == P.OP_METRICS:
            fmt = P.decode_metrics_body(body) if body else P.METRICS_FMT_JSON
            return P.ST_OK, P.encode_lp(self.exposition(fmt))
        if op == P.OP_TRACE:
            trace = json.dumps(
                self._tracer.chrome_trace(), separators=(",", ":")
            )
            return P.ST_OK, P.encode_lp(trace.encode())
        if op == P.OP_COMPACT:
            n = self.db.compact_range()
            return P.ST_OK, P.encode_varint64(n)
        raise P.ProtocolError(f"unhandled opcode 0x{op:02x}")

    def _write_done(self, state: dict, ok_body: bytes) -> tuple[int, bytes]:
        """Gate a locally-applied write on the connection's ack level.

        The write already hit this node's WAL; when the required
        follower acks do not arrive in time the client sees STALLED and
        retries — the retry re-applies an identical overwrite, so the
        at-least-once semantics are safe by idempotence.
        """
        if self.hub is None:
            return P.ST_OK, ok_body
        level = state.get("ack_level")
        if level is None:
            level = self.config.repl_acks
        need = self.hub.resolve_need(level)
        if need <= 0:
            return P.ST_OK, ok_body
        with self._tracer.span("repl-ack-wait", cat="repl", need=need):
            acked = self.hub.wait_for_acks(
                self.db.last_sequence, need, self.config.repl_ack_timeout_s
            )
        if acked:
            return P.ST_OK, ok_body
        self.metrics.record_stall_rejection()
        return P.ST_STALLED, P.encode_varint64(self.config.stall_retry_ms)

    def _stats_dict(self) -> dict:
        db_stats = self.db.stats
        if getattr(self.db, "metrics_snapshot", None) is not None:
            engine = self.db.metrics_snapshot()
        else:
            engine = self.db.obs.metrics.snapshot()
        out = {
            "server": self.metrics.snapshot(),
            "db": {
                "writes": db_stats.writes,
                "gets": db_stats.gets,
                "flushes": db_stats.flushes,
                "compactions": db_stats.compactions,
                "trivial_moves": db_stats.trivial_moves,
                "write_stalls": db_stats.write_stalls,
                "compaction_input_bytes": db_stats.compaction_input_bytes,
                "compaction_output_bytes": db_stats.compaction_output_bytes,
                "l0_files": self.db.num_files(0),
                "total_bytes": self.db.total_bytes(),
                "write_stalled_now": self.db.write_stalled(),
                "compaction_policy": (
                    self.db.policy.spec()
                    if getattr(self.db, "policy", None) is not None
                    else None
                ),
            },
            "engine": engine,
        }
        if getattr(self.db, "shard_stats", None) is not None:
            out["cluster"] = {
                "n_shards": self.db.n_shards,
                "stalled_shards": self.db.stalled_shards(),
                "shards": self.db.shard_stats(),
            }
        if self.hub is not None:
            out["repl"] = {
                "role": "primary",
                "epoch": self.db.repl_epoch,
                "last_sequence": self.db.last_sequence,
                "ack_level_default": self.config.repl_acks,
                "followers": self.hub.followers_status(),
            }
        elif self.follower is not None:
            out["repl"] = self.follower.status()
        return out

    # -------------------------------------------------------- exposition
    def telemetry_snapshot(self) -> dict:
        """One merged metrics snapshot: engine + server + replication.

        The engine side is the DB registry (shard-dimensioned with
        rollups when serving a :class:`~repro.cluster.ShardedDB`); the
        server's own registry (``server.op.*``, connection counters)
        merges on top.  Replication health gauges are refreshed first
        so a scrape always sees current lag/ring occupancy, not values
        from the last write.
        """
        if self.hub is not None:
            self.hub.refresh_gauges()
        if getattr(self.db, "metrics_snapshot", None) is not None:
            snap = self.db.metrics_snapshot()
        else:
            snap = self.db.obs.metrics.snapshot()
        merged = {
            kind: dict(snap.get(kind, {}))
            for kind in ("counters", "gauges", "histograms")
        }
        for kind, values in self.metrics.registry.snapshot().items():
            merged.setdefault(kind, {}).update(values)
        return merged

    def exposition(self, fmt: int = P.METRICS_FMT_JSON) -> bytes:
        """The METRICS opcode payload: the live exposition document."""
        snapshot = self.telemetry_snapshot()
        if fmt == P.METRICS_FMT_PROMETHEUS:
            return render_prometheus(snapshot).encode()
        return render_json(snapshot).encode()

    # ------------------------------------------------------- replication
    async def _serve_subscription(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: P.Request,
        state: dict,
    ) -> None:
        """Own the connection as a push stream after REPL_SUBSCRIBE.

        The server pushes ``REPL_SHIP`` request frames; the follower
        pushes ``REPL_ACK`` request frames back.  Neither direction
        carries responses from here on.  Peers that negotiated >= 2.2
        receive ``SHIP_HEARTBEAT`` frames whenever the WAL is idle, so
        a quiet stream stays distinguishable from a black-holed one.
        """
        from ..replication.errors import FencedError

        async def refuse(status: int, message: str) -> None:
            writer.write(
                P.encode_response(
                    status, request.request_id,
                    P.encode_lp(message.encode()),
                )
            )
            await writer.drain()

        if self.hub is None:
            await refuse(
                P.ST_BAD_REQUEST, "this server is not a replication primary"
            )
            return
        try:
            start_seq, epoch, follower_id = P.decode_subscribe_body(
                request.body
            )
        except P.ProtocolError as exc:
            await refuse(P.ST_BAD_REQUEST, str(exc))
            return
        try:
            mode, sub = self.hub.subscribe(
                follower_id.decode("utf-8", "replace"), start_seq, epoch
            )
        except FencedError as exc:
            await refuse(P.ST_FENCED, str(exc))
            return
        mode_code = (
            P.SUB_MODE_SNAPSHOT if mode == "snapshot" else P.SUB_MODE_WAL
        )
        loop = asyncio.get_running_loop()
        # Dedicated single thread: hub.pull parks on a condition
        # variable, and parking it in the shared pool would starve
        # request workers of one thread per follower.  Named per
        # follower so traces and thread dumps attribute ship work to
        # the subscriber it serves (RA104 covers bare Threads, not
        # executor factories — name them anyway).
        ship_pool = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=(
                f"repl-ship-{follower_id.decode('utf-8', 'replace')}"
            ),
        )
        ack_task = asyncio.create_task(self._read_acks(reader, sub))
        try:
            writer.write(
                P.encode_response(
                    P.ST_OK,
                    request.request_id,
                    P.encode_subscribe_ack(
                        mode_code, self.db.repl_epoch, self.db.last_sequence
                    ),
                )
            )
            await writer.drain()
            if mode == "snapshot" and not await self._stream_snapshot(
                writer, sub
            ):
                return
            # hub.pull returns "idle" about every 0.5 s of WAL silence,
            # which sets the heartbeat cadence.
            heartbeats = state.get("peer_version", (2, 0)) >= (2, 2)
            while True:
                kind, payload = await loop.run_in_executor(
                    ship_pool, self.hub.pull, sub
                )
                if kind == "idle":
                    if heartbeats:
                        writer.write(
                            P.encode_request(
                                P.OP_REPL_SHIP,
                                0,
                                P.encode_ship_heartbeat(self.db.last_sequence),
                            )
                        )
                        await writer.drain()
                    continue
                if kind == "records":
                    writer.write(
                        P.encode_request(
                            P.OP_REPL_SHIP, 0, P.encode_ship_records(payload)
                        )
                    )
                    await writer.drain()
                elif kind == "gap":
                    # The buffer was evicted out from under this
                    # follower: restart it from a full snapshot.
                    if not await self._stream_snapshot(writer, sub):
                        return
                else:  # goodbye
                    writer.write(
                        P.encode_request(
                            P.OP_REPL_SHIP,
                            0,
                            P.encode_ship_goodbye(str(payload)),
                        )
                    )
                    await writer.drain()
                    return
        except OSError:  # follower went away; reconnect catches up
            return
        finally:
            ack_task.cancel()
            try:
                await ack_task
            except asyncio.CancelledError:
                pass
            self.hub.unsubscribe(sub)
            ship_pool.shutdown(wait=False)

    async def _read_acks(self, reader: asyncio.StreamReader, sub) -> None:
        """Drain REPL_ACK frames pushed by the subscribed follower."""
        try:
            while True:
                header = await reader.readexactly(4)
                length = P.frame_length(header, self.config.max_frame_bytes)
                payload = P.decode_frame(
                    length, await reader.readexactly(length + 4)
                )
                ack = P.decode_request(payload)
                if ack.opcode != P.OP_REPL_ACK:
                    return  # protocol violation: drop the stream
                self.hub.record_ack(sub, P.decode_repl_ack_body(ack.body))
        except (asyncio.IncompleteReadError, ConnectionError, P.ProtocolError):
            return

    async def _stream_snapshot(self, writer, sub) -> bool:
        """Ship the full SST tree; False when the peer vanished."""
        loop = asyncio.get_running_loop()
        last_seq, files = await loop.run_in_executor(
            self._pool, self.db.checkpoint_files
        )
        try:
            writer.write(
                P.encode_request(
                    P.OP_REPL_SHIP,
                    0,
                    P.encode_ship_snap_begin(last_seq, len(files)),
                )
            )
            for level, meta, handle in files:
                writer.write(
                    P.encode_request(
                        P.OP_REPL_SHIP,
                        0,
                        P.encode_ship_snap_file(
                            level,
                            meta.name,
                            meta.file_size,
                            meta.smallest,
                            meta.largest,
                        ),
                    )
                )
                offset = 0
                while offset < meta.file_size:
                    n = min(_SNAP_CHUNK_BYTES, meta.file_size - offset)
                    chunk = await loop.run_in_executor(
                        self._pool, handle.pread, offset, n
                    )
                    offset += n
                    writer.write(
                        P.encode_request(
                            P.OP_REPL_SHIP,
                            0,
                            P.encode_ship_snap_chunk(chunk),
                        )
                    )
                    await writer.drain()
            writer.write(
                P.encode_request(
                    P.OP_REPL_SHIP, 0, P.encode_ship_snap_end(last_seq)
                )
            )
            await writer.drain()
        except OSError:
            return False
        finally:
            for _, _, handle in files:
                try:
                    handle.close()
                except OSError:
                    pass
        self.hub.reset_after_snapshot(sub, last_seq)
        return True


# ----------------------------------------------------------- embedding
class ServerThread:
    """Run a :class:`KVServer` on a private event loop in a thread.

    For sync callers — tests, the bench load generator, examples —
    that want a live server without owning an asyncio loop::

        handle = ServerThread(db).start()
        ... connect SyncClient(handle.host, handle.port) ...
        handle.stop()        # graceful: drains, flushes, closes the DB
    """

    def __init__(
        self,
        db: DB,
        config: Optional[ServerConfig] = None,
        metrics: Optional[ServerMetrics] = None,
        own_db: bool = True,
        hub=None,
        follower=None,
    ) -> None:
        self.server = KVServer(
            db, config, metrics, own_db=own_db, hub=hub, follower=follower
        )
        self._thread = threading.Thread(
            target=self._run, name="kv-server", daemon=True
        )
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def metrics(self) -> ServerMetrics:
        return self.server.metrics

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful stop; joins the server thread."""
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(
    db: DB,
    config: Optional[ServerConfig] = None,
    metrics: Optional[ServerMetrics] = None,
    hub=None,
    follower=None,
) -> None:
    """Blocking entry point (``dbtool serve``): run until interrupted."""

    async def _main() -> None:
        import signal

        server = KVServer(db, config, metrics, hub=hub, follower=follower)
        if follower is not None:
            # Snapshot install replaces the follower's DB; the server
            # must serve the replacement.
            follower.bind_db_swap(server.swap_db)
        await server.start()
        print(f"serving on {server.host}:{server.port}", flush=True)
        stop_signal = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_signal.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        try:
            await stop_signal.wait()
        finally:
            print("shutting down: draining, flushing, compacting", flush=True)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
