"""Asyncio TCP server exposing a :class:`repro.db.DB` over the wire.

Architecture
============

One asyncio event loop owns all sockets; the blocking engine calls
(``DB.put`` … ``DB.compact_range``) are dispatched to a small thread
pool via ``run_in_executor`` (the DB serialises internally with its
own lock, so pool width bounds *queueing*, not data races).  Per
connection, a reader coroutine decodes frames and a writer coroutine
emits responses **in request order** (Redis-style pipelining) from a
bounded queue.

Backpressure, two layers
========================

* **Per-connection**: the response queue is bounded
  (``max_inflight_per_conn``); when a client pipelines more requests
  than that, the reader coroutine stops consuming its socket and TCP
  flow control pushes back to the sender.
* **Engine stalls**: the paper's write pause (§I) — L0 backed up,
  ``DB._maybe_stall`` would block the writer — is surfaced as an
  explicit ``STALLED`` response carrying a suggested retry delay,
  instead of silently parking a worker thread inside the engine.
  Clients back off and retry (:mod:`repro.server.client` does this
  automatically), which makes compaction pauses *observable* at the
  network edge — exactly what the paper's pipelined compaction is
  meant to shorten.  In cluster mode (serving a
  :class:`repro.cluster.ShardedDB`) the rejection is routed: only
  writes whose keys land on a stalled shard see ``STALLED``; traffic
  to healthy shards flows on.

Graceful shutdown drains in-flight requests, flushes the memtable,
runs compactions to quiescence, and closes the DB, so the directory
passes ``repro.db.verify.verify_db`` afterwards.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from ..db.db import DB
from ..devices.faults import TransientIOError
from ..lsm.wal import WriteBatch
from .metrics import ServerMetrics
from . import protocol as P

__all__ = ["ServerConfig", "KVServer", "ServerThread", "serve_forever"]

_log = logging.getLogger("repro.server")


@dataclass
class ServerConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port from KVServer.port
    worker_threads: int = 4
    #: Pipelined requests admitted per connection before the server
    #: stops reading that socket (TCP backpressure).
    max_inflight_per_conn: int = 32
    max_frame_bytes: int = P.MAX_FRAME_BYTES
    #: Hard cap on entries returned by one SCAN (result is flagged
    #: truncated when it hits).
    scan_limit_max: int = 65536
    #: Suggested client back-off carried in STALLED responses.
    stall_retry_ms: int = 25
    #: Grace period for live connections to finish during stop().
    drain_timeout_s: float = 10.0

    def validate(self) -> None:
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        if self.max_inflight_per_conn < 1:
            raise ValueError("max_inflight_per_conn must be >= 1")
        if self.scan_limit_max < 1:
            raise ValueError("scan_limit_max must be >= 1")


class KVServer:
    """The networked KV service; one instance wraps one open engine.

    ``db`` is anything DB-shaped: a :class:`repro.db.DB` or a
    :class:`repro.cluster.ShardedDB` (cluster mode — same wire
    protocol, shard-aware stall routing, STATS grows a ``cluster``
    section with per-shard rollups).
    """

    def __init__(
        self,
        db: DB,
        config: Optional[ServerConfig] = None,
        metrics: Optional[ServerMetrics] = None,
        own_db: bool = True,
    ) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.config.validate()
        self.metrics = metrics or ServerMetrics()
        self.own_db = own_db
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing = False
        self._pool: Optional[ThreadPoolExecutor] = None

    # ---------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.worker_threads, thread_name_prefix="kv-worker"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ephemeral port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def stop(self) -> None:
        """Graceful shutdown: drain, flush, compact, close the DB."""
        if self._server is None:
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._pool, self._drain_db)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def _drain_db(self) -> None:
        """Flush the memtable and run compactions to quiescence."""
        if getattr(self.db, "_closed", False):
            return
        self.db.flush()
        if self.db._background:
            self.db.wait_for_compactions()
        if self.own_db:
            self.db.close()

    # -------------------------------------------------------- connections
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self.metrics.connection_opened()
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.max_inflight_per_conn
        )
        writer_task = asyncio.create_task(self._write_responses(queue, writer))
        try:
            await self._read_requests(reader, queue)
        finally:
            try:
                await queue.put(None)
                await writer_task
            except asyncio.CancelledError:  # forced stop mid-drain
                writer_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # covers ConnectionError
                pass
            self.metrics.connection_closed()
            self._conn_tasks.discard(task)

    async def _read_requests(
        self, reader: asyncio.StreamReader, queue: asyncio.Queue
    ) -> None:
        while True:
            try:
                header = await reader.readexactly(4)
                length = P.frame_length(header, self.config.max_frame_bytes)
                payload = P.decode_frame(
                    length, await reader.readexactly(length + 4)
                )
                request = P.decode_request(payload)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away
            except P.ProtocolError:
                # The stream is unframed garbage from here on: there is
                # no way to resynchronise, so drop the connection.
                self.metrics.record_protocol_error()
                return
            # Bounded queue: blocks when the pipeline is full, which
            # stops reading this socket until responses drain.
            await queue.put(
                asyncio.create_task(
                    self._handle_request(request, P.FRAME_OVERHEAD + len(payload))
                )
            )

    async def _write_responses(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        # Keeps consuming until the sentinel even after a send failure,
        # so the reader's queue.put never deadlocks on a dead peer.
        broken = False
        while True:
            task = await queue.get()
            if task is None:
                return
            try:
                frame = await task
            except Exception:  # pragma: no cover - handler is total
                _log.exception("request task failed outside the handler")
                continue
            if broken:
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except OSError:  # covers ConnectionError
                broken = True

    # ----------------------------------------------------------- dispatch
    async def _handle_request(self, request: P.Request, bytes_in: int) -> bytes:
        """Execute one request; returns the encoded response frame."""
        t0 = time.perf_counter()
        status = P.ST_SERVER_ERROR
        body = b""
        try:
            if self._closing:
                status, body = P.ST_SHUTTING_DOWN, P.encode_lp(
                    b"server shutting down"
                )
            elif self._stalled_for(request):
                # The engine would park this write until compaction
                # catches up; tell the client to back off instead.
                self.metrics.record_stall_rejection()
                status = P.ST_STALLED
                body = P.encode_varint64(self.config.stall_retry_ms)
            else:
                loop = asyncio.get_running_loop()
                status, body = await loop.run_in_executor(
                    self._pool, self._execute, request
                )
        except P.ProtocolError as exc:
            status, body = P.ST_BAD_REQUEST, P.encode_lp(str(exc).encode())
        except TransientIOError:
            # Retryable storage hiccup (the engine already exhausted
            # its own retries): tell the client to back off and retry
            # — same contract as a compaction stall, not a hard error.
            self.metrics.record_stall_rejection()
            status = P.ST_STALLED
            body = P.encode_varint64(self.config.stall_retry_ms)
        except Exception as exc:  # engine failure: report, keep serving
            status, body = P.ST_SERVER_ERROR, P.encode_lp(
                f"{type(exc).__name__}: {exc}".encode()
            )
        frame = P.encode_response(status, request.request_id, body)
        self.metrics.record(
            request.opcode,
            time.perf_counter() - t0,
            bytes_in,
            len(frame),
            error=status
            in (P.ST_BAD_REQUEST, P.ST_SERVER_ERROR, P.ST_SHUTTING_DOWN),
        )
        return frame

    def _stalled_for(self, request: P.Request) -> bool:
        """Would this request hit a write stall right now?

        Against a sharded engine only the shard(s) the request's keys
        route to count — one backed-up shard must not reject writes
        bound for healthy shards — so the keys are peeked out of the
        request body and passed to ``write_stalled(keys=...)``.
        Undecodable bodies report no stall; ``_execute`` raises the
        proper BAD_REQUEST for them.
        """
        if request.opcode not in P.WRITE_OPCODES:
            return False
        if getattr(self.db, "shard_for_key", None) is None:
            return self.db.write_stalled()
        try:
            keys = P.write_request_keys(request)
        except P.ProtocolError:
            return False
        return self.db.write_stalled(keys=keys)

    def _execute(self, request: P.Request) -> tuple[int, bytes]:
        """Run one opcode against the DB (worker thread)."""
        op, body = request.opcode, request.body
        if op == P.OP_PING:
            return P.ST_OK, body
        if op == P.OP_GET:
            key, _ = P.decode_lp(body)
            value = self.db.get(key)
            if value is None:
                return P.ST_NOT_FOUND, b""
            return P.ST_OK, P.encode_lp(value)
        if op == P.OP_PUT:
            key, pos = P.decode_lp(body)
            value, _ = P.decode_lp(body, pos)
            self.db.put(key, value)
            return P.ST_OK, b""
        if op == P.OP_DELETE:
            key, _ = P.decode_lp(body)
            self.db.delete(key)
            return P.ST_OK, b""
        if op == P.OP_BATCH:
            batch = WriteBatch()
            ops = P.decode_batch_body(body)
            for entry in ops:
                if entry[0] == "put":
                    batch.put(entry[1], entry[2])
                else:
                    batch.delete(entry[1])
            self.db.write(batch)
            return P.ST_OK, P.encode_varint64(len(ops))
        if op == P.OP_SCAN:
            start, end, limit, reverse = P.decode_scan_body(body)
            cap = self.config.scan_limit_max
            effective = min(limit, cap) if limit else cap
            scan = (
                self.db.scan_reverse(start, end)
                if reverse
                else self.db.scan(start, end)
            )
            pairs = []
            truncated = False
            for pair in scan:
                if len(pairs) >= effective:
                    # Only the server cap counts as truncation; a
                    # client-requested limit is just satisfied.
                    truncated = not limit or effective < limit
                    break
                pairs.append(pair)
            return P.ST_OK, P.encode_scan_result(pairs, truncated)
        if op == P.OP_STATS:
            return P.ST_OK, P.encode_lp(
                json.dumps(self._stats_dict(), sort_keys=True).encode()
            )
        if op == P.OP_COMPACT:
            n = self.db.compact_range()
            return P.ST_OK, P.encode_varint64(n)
        raise P.ProtocolError(f"unhandled opcode 0x{op:02x}")

    def _stats_dict(self) -> dict:
        db_stats = self.db.stats
        if getattr(self.db, "metrics_snapshot", None) is not None:
            engine = self.db.metrics_snapshot()
        else:
            engine = self.db.obs.metrics.snapshot()
        out = {
            "server": self.metrics.snapshot(),
            "db": {
                "writes": db_stats.writes,
                "gets": db_stats.gets,
                "flushes": db_stats.flushes,
                "compactions": db_stats.compactions,
                "trivial_moves": db_stats.trivial_moves,
                "write_stalls": db_stats.write_stalls,
                "compaction_input_bytes": db_stats.compaction_input_bytes,
                "compaction_output_bytes": db_stats.compaction_output_bytes,
                "l0_files": self.db.num_files(0),
                "total_bytes": self.db.total_bytes(),
                "write_stalled_now": self.db.write_stalled(),
            },
            "engine": engine,
        }
        if getattr(self.db, "shard_stats", None) is not None:
            out["cluster"] = {
                "n_shards": self.db.n_shards,
                "stalled_shards": self.db.stalled_shards(),
                "shards": self.db.shard_stats(),
            }
        return out


# ----------------------------------------------------------- embedding
class ServerThread:
    """Run a :class:`KVServer` on a private event loop in a thread.

    For sync callers — tests, the bench load generator, examples —
    that want a live server without owning an asyncio loop::

        handle = ServerThread(db).start()
        ... connect SyncClient(handle.host, handle.port) ...
        handle.stop()        # graceful: drains, flushes, closes the DB
    """

    def __init__(
        self,
        db: DB,
        config: Optional[ServerConfig] = None,
        metrics: Optional[ServerMetrics] = None,
        own_db: bool = True,
    ) -> None:
        self.server = KVServer(db, config, metrics, own_db=own_db)
        self._thread = threading.Thread(
            target=self._run, name="kv-server", daemon=True
        )
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def metrics(self) -> ServerMetrics:
        return self.server.metrics

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful stop; joins the server thread."""
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(
    db: DB,
    config: Optional[ServerConfig] = None,
    metrics: Optional[ServerMetrics] = None,
) -> None:
    """Blocking entry point (``dbtool serve``): run until interrupted."""

    async def _main() -> None:
        import signal

        server = KVServer(db, config, metrics)
        await server.start()
        print(f"serving on {server.host}:{server.port}", flush=True)
        stop_signal = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_signal.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        try:
            await stop_signal.wait()
        finally:
            print("shutting down: draining, flushing, compacting", flush=True)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
