"""Networked KV service over the LSM engine.

This package turns the embedded :class:`repro.db.DB` into a TCP
service so the paper's headline effect — pipelined compaction
shortening the write pauses clients observe — can be measured
end-to-end across a socket, the way Pome (arXiv:2307.16693) and the
compaction-design-space survey (arXiv:2202.04522) evaluate policies.

Modules
=======

``protocol``  length-prefixed, CRC-32C-framed binary wire format
``server``    asyncio TCP server with thread-pool dispatch, bounded
              per-connection pipelining, and explicit ``STALLED``
              backpressure when the engine's L0 backs up
``client``    blocking and asyncio clients with pipelining and
              bounded stall retry
``retry``     client resilience policy: jittered-backoff retries and
              per-endpoint circuit breakers
``metrics``   per-opcode counters + latency histograms (p50/p95/p99),
              queryable over the wire via the STATS opcode

Quick start
===========

>>> from repro.db import DB
>>> from repro.devices import MemStorage
>>> from repro.server import ServerThread, SyncClient
>>> handle = ServerThread(DB(MemStorage(), background=True)).start()
>>> with SyncClient(handle.host, handle.port) as client:
...     client.put(b"hello", b"world")
...     client.get(b"hello")
b'world'
>>> handle.stop()
"""

from .client import (
    AsyncClient,
    ClientError,
    ProtocolError,
    ServerBusyError,
    ServerError,
    SyncClient,
)
from .metrics import LatencyHistogram, ServerMetrics
from .retry import CircuitBreaker, CircuitOpenError, RetryPolicy
from .server import KVServer, ServerConfig, ServerThread, serve_forever

__all__ = [
    "AsyncClient",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClientError",
    "KVServer",
    "LatencyHistogram",
    "ProtocolError",
    "RetryPolicy",
    "ServerBusyError",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
    "ServerThread",
    "SyncClient",
    "serve_forever",
]
