"""Wire format of the networked KV service.

The protocol is a length-prefixed binary framing that reuses the
engine's own primitives — :mod:`repro.codec` varints for
length-prefixed strings and the LevelDB-masked CRC-32C for frame
integrity — so a server frame is checked exactly like an SSTable
block:

.. code-block:: none

    +-----------------+------------------------+------------------+
    | fixed32 length  |  payload (length bytes)|  fixed32 masked  |
    | (little endian) |                        |  CRC-32C(payload)|
    +-----------------+------------------------+------------------+

Request payload::

    opcode:u8  request_id:varint64  body

Protocol 2.1 adds optional *trace context*: a request whose opcode byte
carries :data:`TRACE_FLAG` (the high bit — no real opcode uses it) is
followed by two extra varints before the body::

    opcode|0x80:u8  request_id:varint64  trace_id:varint64
    span_id:varint64  body

Clients only set the flag after a hello negotiated minor >= 1, so a 2.0
server never sees it; a 2.1 server accepts both shapes on every
connection.  The ids let the server stamp its dispatch/DB/replication
spans with the client's trace id (:func:`repro.obs.trace_context`), so
one merged Chrome trace links the request across processes.

Response payload::

    status:u8  request_id:varint64  body

``request_id`` is assigned by the client and echoed back verbatim;
responses on one connection are written in request order (Redis-style
pipelining), the id exists so clients can *assert* the pairing.

Bodies use ``lp`` (length-prefixed) byte strings: varint32 length then
the raw bytes.  Per-opcode bodies are documented on the encode
helpers below and in ``docs/SERVER.md``.

The ``STALLED`` status is how the server surfaces the engine's write
pauses (paper §I): instead of silently blocking inside
``DB._maybe_stall`` while L0 is backed up, the server refuses the
write with a suggested retry delay so the *client* observes the
compaction pause explicitly and can back off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..codec.checksum import crc32c, mask_crc, unmask_crc
from ..codec.varint import (
    decode_varint64,
    encode_varint32,
    encode_varint64,
    get_fixed32,
    put_fixed32,
)

__all__ = [
    "OP_PING",
    "OP_GET",
    "OP_PUT",
    "OP_DELETE",
    "OP_BATCH",
    "OP_SCAN",
    "OP_STATS",
    "OP_COMPACT",
    "OP_REPL_SUBSCRIBE",
    "OP_REPL_SHIP",
    "OP_REPL_ACK",
    "OP_FLUSH",
    "OP_METRICS",
    "OP_TRACE",
    "OP_PROMOTE",
    "TRACE_FLAG",
    "METRICS_FMT_JSON",
    "METRICS_FMT_PROMETHEUS",
    "OPCODE_NAMES",
    "WRITE_OPCODES",
    "ST_OK",
    "ST_NOT_FOUND",
    "ST_STALLED",
    "ST_BAD_REQUEST",
    "ST_SERVER_ERROR",
    "ST_SHUTTING_DOWN",
    "ST_FENCED",
    "STATUS_NAMES",
    "PROTOCOL_MAJOR",
    "PROTOCOL_MINOR",
    "HELLO_MAGIC",
    "SUB_MODE_WAL",
    "SUB_MODE_SNAPSHOT",
    "SHIP_RECORDS",
    "SHIP_SNAP_BEGIN",
    "SHIP_SNAP_FILE",
    "SHIP_SNAP_CHUNK",
    "SHIP_SNAP_END",
    "SHIP_GOODBYE",
    "SHIP_HEARTBEAT",
    "FRAME_OVERHEAD",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "encode_frame",
    "decode_frame",
    "frame_length",
    "encode_lp",
    "decode_lp",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "encode_batch_body",
    "decode_batch_body",
    "write_request_keys",
    "encode_scan_body",
    "decode_scan_body",
    "encode_scan_result",
    "decode_scan_result",
    "encode_hello_body",
    "decode_hello_body",
    "encode_hello_ack",
    "decode_hello_ack",
    "encode_subscribe_body",
    "decode_subscribe_body",
    "encode_subscribe_ack",
    "decode_subscribe_ack",
    "encode_ship_records",
    "encode_ship_snap_begin",
    "encode_ship_snap_file",
    "encode_ship_snap_chunk",
    "encode_ship_snap_end",
    "encode_ship_goodbye",
    "encode_ship_heartbeat",
    "decode_ship_body",
    "encode_repl_ack_body",
    "decode_repl_ack_body",
    "encode_metrics_body",
    "decode_metrics_body",
    "encode_promote_body",
    "decode_promote_body",
    "encode_promote_ack",
    "decode_promote_ack",
]

# ------------------------------------------------------------- opcodes
OP_PING = 0x01
OP_GET = 0x02
OP_PUT = 0x03
OP_DELETE = 0x04
OP_BATCH = 0x05
OP_SCAN = 0x06
OP_STATS = 0x07
OP_COMPACT = 0x08
OP_REPL_SUBSCRIBE = 0x09
OP_REPL_SHIP = 0x0A
OP_REPL_ACK = 0x0B
OP_FLUSH = 0x0C
OP_METRICS = 0x0D
OP_TRACE = 0x0E
OP_PROMOTE = 0x0F

#: High bit of the request opcode byte: set (protocol >= 2.1) when the
#: request head carries trace-context varints before the body.
TRACE_FLAG = 0x80

OPCODE_NAMES = {
    OP_PING: "PING",
    OP_GET: "GET",
    OP_PUT: "PUT",
    OP_DELETE: "DELETE",
    OP_BATCH: "BATCH",
    OP_SCAN: "SCAN",
    OP_STATS: "STATS",
    OP_COMPACT: "COMPACT",
    OP_REPL_SUBSCRIBE: "REPL_SUBSCRIBE",
    OP_REPL_SHIP: "REPL_SHIP",
    OP_REPL_ACK: "REPL_ACK",
    OP_FLUSH: "FLUSH",
    OP_METRICS: "METRICS",
    OP_TRACE: "TRACE",
    OP_PROMOTE: "PROMOTE",
}

#: Opcodes that mutate the tree and are therefore subject to the
#: write-stall backpressure check.
WRITE_OPCODES = frozenset({OP_PUT, OP_DELETE, OP_BATCH})

# ------------------------------------------------------------ statuses
ST_OK = 0x00
ST_NOT_FOUND = 0x01
ST_STALLED = 0x02
ST_BAD_REQUEST = 0x03
ST_SERVER_ERROR = 0x04
ST_SHUTTING_DOWN = 0x05
ST_FENCED = 0x06

STATUS_NAMES = {
    ST_OK: "OK",
    ST_NOT_FOUND: "NOT_FOUND",
    ST_STALLED: "STALLED",
    ST_BAD_REQUEST: "BAD_REQUEST",
    ST_SERVER_ERROR: "SERVER_ERROR",
    ST_SHUTTING_DOWN: "SHUTTING_DOWN",
    ST_FENCED: "FENCED",
}

# ------------------------------------------------- protocol versioning
#: Protocol 2 added replication (REPL_* opcodes, FLUSH, FENCED) and the
#: PING hello handshake itself.  Servers reject a hello whose *major*
#: they do not know; minor bumps are additive and ignored.  Minor 1
#: (telemetry) added the METRICS/TRACE opcodes and the TRACE_FLAG
#: request head extension — all additive: a 2.0 client never sends
#: them, and a 2.1 client only after the hello ack announces >= 2.1.
#: Minor 2 (failover) added the PROMOTE opcode and SHIP_HEARTBEAT idle
#: frames on the replication stream — additive again: the primary only
#: heartbeats subscribers whose hello announced >= 2.2, and PROMOTE on
#: an older server fails loudly as an unknown opcode.
PROTOCOL_MAJOR = 2
PROTOCOL_MINOR = 2

#: A PING body opening with this magic is a version hello rather than
#: opaque echo data.  The leading NUL keeps it out of the plausible
#: space of hand-typed echo payloads.
HELLO_MAGIC = b"\x00REPRO"

#: Marker byte a protocol-2 server appends to its hello reply.  A
#: pre-versioning server echoes the hello verbatim, so the marker is
#: how the client tells a real negotiation from an echo.
_HELLO_ACK_MARKER = 0x01

# ------------------------------------------------- replication consts
#: Subscribe-ack modes: the primary either tails its WAL from the
#: requested sequence or forces a full snapshot first.
SUB_MODE_WAL = 1
SUB_MODE_SNAPSHOT = 2

#: Ship-message kinds (first byte of a REPL_SHIP body).
SHIP_RECORDS = 1
SHIP_SNAP_BEGIN = 2
SHIP_SNAP_FILE = 3
SHIP_SNAP_CHUNK = 4
SHIP_SNAP_END = 5
SHIP_GOODBYE = 6
SHIP_HEARTBEAT = 7

#: Bytes around the payload: 4-byte length prefix + 4-byte CRC trailer.
FRAME_OVERHEAD = 8

#: Default refusal threshold for a single frame (requests *and*
#: responses); a peer that announces more is treated as corrupt.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_BATCH_PUT = 0
_BATCH_DELETE = 1

_SCAN_HAS_START = 0x01
_SCAN_HAS_END = 0x02
_SCAN_REVERSE = 0x04


class ProtocolError(ValueError):
    """Malformed frame: bad length, bad checksum, or bad payload."""


# ------------------------------------------------------------- framing
def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` with the length prefix and CRC-32C trailer."""
    return (
        put_fixed32(len(payload))
        + payload
        + put_fixed32(mask_crc(crc32c(payload)))
    )


def frame_length(header: bytes, limit: int = MAX_FRAME_BYTES) -> int:
    """Payload length announced by a 4-byte frame header."""
    if len(header) != 4:
        raise ProtocolError(f"short frame header: {len(header)} bytes")
    length = get_fixed32(header, 0)
    if length > limit:
        raise ProtocolError(f"frame of {length} bytes exceeds limit {limit}")
    return length


def decode_frame(length: int, rest: bytes) -> bytes:
    """Verify payload + CRC trailer (``rest``); returns the payload."""
    if len(rest) != length + 4:
        raise ProtocolError(
            f"truncated frame: expected {length + 4} bytes, got {len(rest)}"
        )
    payload, crc = rest[:length], get_fixed32(rest, length)
    if crc32c(payload) != unmask_crc(crc):
        raise ProtocolError("frame checksum mismatch")
    return payload


# ------------------------------------------------- length-prefixed str
def encode_lp(data: bytes) -> bytes:
    """Varint length prefix + raw bytes."""
    return encode_varint32(len(data)) + data


def decode_lp(buf: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode one length-prefixed string → ``(data, next_offset)``."""
    try:
        length, pos = decode_varint64(buf, offset)
    except ValueError as exc:
        raise ProtocolError(f"bad length prefix: {exc}") from None
    end = pos + length
    if end > len(buf):
        raise ProtocolError("length prefix overruns payload")
    return bytes(buf[pos:end]), end


# ------------------------------------------------- request / response
@dataclass(frozen=True)
class Request:
    """One decoded request frame.

    ``trace_id``/``span_id`` are the 2.1 trace context (None when the
    frame carried none): the client's trace id and the id of the client
    span that sent this request.
    """

    opcode: int
    request_id: int
    body: bytes = b""
    trace_id: Optional[int] = None
    span_id: Optional[int] = None

    @property
    def opcode_name(self) -> str:
        return OPCODE_NAMES.get(self.opcode, f"0x{self.opcode:02x}")


@dataclass(frozen=True)
class Response:
    """One decoded response frame."""

    status: int
    request_id: int
    body: bytes = b""

    @property
    def status_name(self) -> str:
        return STATUS_NAMES.get(self.status, f"0x{self.status:02x}")

    @property
    def ok(self) -> bool:
        return self.status == ST_OK


def _encode_head(first_byte: int, request_id: int, body: bytes) -> bytes:
    return bytes([first_byte]) + encode_varint64(request_id) + body


def _decode_head(payload: bytes) -> tuple[int, int, bytes]:
    if not payload:
        raise ProtocolError("empty payload")
    first = payload[0]
    try:
        request_id, pos = decode_varint64(payload, 1)
    except ValueError as exc:
        raise ProtocolError(f"bad request id: {exc}") from None
    return first, request_id, bytes(payload[pos:])


def encode_request(
    opcode: int,
    request_id: int,
    body: bytes = b"",
    trace_id: Optional[int] = None,
    span_id: Optional[int] = None,
) -> bytes:
    """Full request frame (framing included).

    Passing ``trace_id`` (protocol >= 2.1 only — callers must have
    negotiated via hello) sets :data:`TRACE_FLAG` and prepends the
    trace-context varints to the body.
    """
    if opcode not in OPCODE_NAMES:
        raise ProtocolError(f"unknown opcode 0x{opcode:02x}")
    if trace_id is None:
        return encode_frame(_encode_head(opcode, request_id, body))
    ctx = (
        encode_varint64(trace_id)
        + encode_varint64(span_id if span_id is not None else 0)
    )
    return encode_frame(
        _encode_head(opcode | TRACE_FLAG, request_id, ctx + body)
    )


def decode_request(payload: bytes) -> Request:
    first, request_id, body = _decode_head(payload)
    opcode = first & ~TRACE_FLAG
    if opcode not in OPCODE_NAMES:
        raise ProtocolError(f"unknown opcode 0x{opcode:02x}")
    trace_id = span_id = None
    if first & TRACE_FLAG:
        try:
            trace_id, pos = decode_varint64(body, 0)
            span_id, pos = decode_varint64(body, pos)
        except ValueError as exc:
            raise ProtocolError(f"bad trace context: {exc}") from None
        body = body[pos:]
    return Request(opcode, request_id, body, trace_id, span_id)


def encode_response(status: int, request_id: int, body: bytes = b"") -> bytes:
    """Full response frame (framing included)."""
    if status not in STATUS_NAMES:
        raise ProtocolError(f"unknown status 0x{status:02x}")
    return encode_frame(_encode_head(status, request_id, body))


def decode_response(payload: bytes) -> Response:
    status, request_id, body = _decode_head(payload)
    if status not in STATUS_NAMES:
        raise ProtocolError(f"unknown status 0x{status:02x}")
    return Response(status, request_id, body)


# ------------------------------------------------------ opcode bodies
# PING    body: empty           → OK, body echoed back
# GET     body: lp key          → OK lp value | NOT_FOUND
# PUT     body: lp key lp value → OK
# DELETE  body: lp key          → OK
# BATCH   body: see below       → OK varint n_applied
# SCAN    body: see below       → OK scan result
# STATS   body: empty           → OK lp utf-8 JSON
# COMPACT body: empty           → OK varint n_compactions
def encode_batch_body(ops) -> bytes:
    """``ops`` is an iterable of ("put", key, value) / ("delete", key)."""
    ops = list(ops)
    out = bytearray(encode_varint32(len(ops)))
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            out.append(_BATCH_PUT)
            out += encode_lp(key)
            out += encode_lp(value)
        elif op[0] == "delete":
            out.append(_BATCH_DELETE)
            out += encode_lp(op[1])
        else:
            raise ProtocolError(f"unknown batch op {op[0]!r}")
    return bytes(out)


def decode_batch_body(body: bytes) -> list[tuple]:
    count, pos = decode_varint64(body, 0)
    ops: list[tuple] = []
    for _ in range(count):
        if pos >= len(body):
            raise ProtocolError("truncated batch body")
        kind = body[pos]
        pos += 1
        key, pos = decode_lp(body, pos)
        if kind == _BATCH_PUT:
            value, pos = decode_lp(body, pos)
            ops.append(("put", key, value))
        elif kind == _BATCH_DELETE:
            ops.append(("delete", key))
        else:
            raise ProtocolError(f"unknown batch op kind {kind}")
    if pos != len(body):
        raise ProtocolError("trailing bytes after batch body")
    return ops


def write_request_keys(request: Request) -> list[bytes]:
    """The user keys a write request touches (for shard-aware routing).

    PUT/DELETE contribute their single key, BATCH every op's key;
    non-write opcodes contribute none.  Raises :class:`ProtocolError`
    on a malformed body, same as full decoding would.
    """
    op, body = request.opcode, request.body
    if op in (OP_PUT, OP_DELETE):
        key, _ = decode_lp(body)
        return [key]
    if op == OP_BATCH:
        return [entry[1] for entry in decode_batch_body(body)]
    return []


def encode_scan_body(
    start: Optional[bytes],
    end: Optional[bytes],
    limit: int = 0,
    reverse: bool = False,
) -> bytes:
    """``limit`` 0 means "no client limit" (the server still caps)."""
    flags = 0
    if start is not None:
        flags |= _SCAN_HAS_START
    if end is not None:
        flags |= _SCAN_HAS_END
    if reverse:
        flags |= _SCAN_REVERSE
    out = bytearray([flags])
    if start is not None:
        out += encode_lp(start)
    if end is not None:
        out += encode_lp(end)
    out += encode_varint64(limit)
    return bytes(out)


def decode_scan_body(
    body: bytes,
) -> tuple[Optional[bytes], Optional[bytes], int, bool]:
    if not body:
        raise ProtocolError("empty scan body")
    flags = body[0]
    pos = 1
    start = end = None
    if flags & _SCAN_HAS_START:
        start, pos = decode_lp(body, pos)
    if flags & _SCAN_HAS_END:
        end, pos = decode_lp(body, pos)
    limit, pos = decode_varint64(body, pos)
    if pos != len(body):
        raise ProtocolError("trailing bytes after scan body")
    return start, end, limit, bool(flags & _SCAN_REVERSE)


def encode_scan_result(pairs, truncated: bool) -> bytes:
    """``truncated`` flags that the server cap cut the result short."""
    pairs = list(pairs)
    out = bytearray([1 if truncated else 0])
    out += encode_varint32(len(pairs))
    for key, value in pairs:
        out += encode_lp(key)
        out += encode_lp(value)
    return bytes(out)


def decode_scan_result(body: bytes) -> tuple[list[tuple[bytes, bytes]], bool]:
    if not body:
        raise ProtocolError("empty scan result")
    truncated = bool(body[0])
    count, pos = decode_varint64(body, 1)
    pairs: list[tuple[bytes, bytes]] = []
    for _ in range(count):
        key, pos = decode_lp(body, pos)
        value, pos = decode_lp(body, pos)
        pairs.append((key, value))
    if pos != len(body):
        raise ProtocolError("trailing bytes after scan result")
    return pairs, truncated


# ------------------------------------------------- version handshake
# The hello rides inside PING so it is safe to send to any server:
# a pre-versioning server treats the body as opaque echo data and
# returns it verbatim, which the client detects by the missing ack
# marker and reports as "server speaks protocol 1".
def encode_hello_body(
    major: int = PROTOCOL_MAJOR,
    minor: int = PROTOCOL_MINOR,
    ack_level: Optional[int] = None,
) -> bytes:
    """Client hello: magic + version + optional desired write ack level.

    ``ack_level`` lets a replication-aware client pin how many follower
    acks its writes on this connection must collect (-1 = majority).
    """
    out = bytearray(HELLO_MAGIC)
    out += encode_varint64(major)
    out += encode_varint64(minor)
    if ack_level is not None:
        out.append(1)
        out += encode_varint64(ack_level + 1)  # shift so majority=-1 fits
    else:
        out.append(0)
    return bytes(out)


def decode_hello_body(
    body: bytes,
) -> Optional[tuple[int, int, Optional[int]]]:
    """``(major, minor, ack_level)`` if ``body`` is a hello, else None."""
    if not body.startswith(HELLO_MAGIC):
        return None
    pos = len(HELLO_MAGIC)
    try:
        major, pos = decode_varint64(body, pos)
        minor, pos = decode_varint64(body, pos)
        ack_level: Optional[int] = None
        if pos < len(body) and body[pos]:
            shifted, pos = decode_varint64(body, pos + 1)
            ack_level = shifted - 1
        elif pos < len(body):
            pos += 1
        if pos != len(body):
            raise ValueError("trailing bytes")
    except (ValueError, IndexError) as exc:
        raise ProtocolError(f"malformed hello body: {exc}") from None
    return major, minor, ack_level


def encode_hello_ack(
    major: int = PROTOCOL_MAJOR, minor: int = PROTOCOL_MINOR
) -> bytes:
    """Server reply to a hello: magic + server version + ack marker."""
    return (
        HELLO_MAGIC
        + encode_varint64(major)
        + encode_varint64(minor)
        + bytes([_HELLO_ACK_MARKER])
    )


def decode_hello_ack(body: bytes) -> Optional[tuple[int, int]]:
    """``(major, minor)`` of the server, or None if the reply is just a
    verbatim echo from a pre-versioning server."""
    if not body.startswith(HELLO_MAGIC):
        return None
    pos = len(HELLO_MAGIC)
    try:
        major, pos = decode_varint64(body, pos)
        minor, pos = decode_varint64(body, pos)
    except ValueError:
        return None
    if pos == len(body) - 1 and body[pos] == _HELLO_ACK_MARKER:
        return major, minor
    return None  # echo of our own hello → protocol-1 server


# --------------------------------------------------- replication bodies
# REPL_SUBSCRIBE body: varint start_seq, varint follower_epoch,
#                      lp follower_id
#   → OK  u8 mode, varint primary_epoch, varint primary_seq
#   → FENCED when the follower's epoch is newer than the primary's
# REPL_SHIP (server→client push): u8 kind, kind-specific payload
# REPL_ACK  (client→server push): varint acked_seq
def encode_subscribe_body(
    start_seq: int, epoch: int, follower_id: bytes
) -> bytes:
    return (
        encode_varint64(start_seq)
        + encode_varint64(epoch)
        + encode_lp(follower_id)
    )


def decode_subscribe_body(body: bytes) -> tuple[int, int, bytes]:
    try:
        start_seq, pos = decode_varint64(body, 0)
        epoch, pos = decode_varint64(body, pos)
    except ValueError as exc:
        raise ProtocolError(f"bad subscribe body: {exc}") from None
    follower_id, pos = decode_lp(body, pos)
    if pos != len(body):
        raise ProtocolError("trailing bytes after subscribe body")
    return start_seq, epoch, follower_id


def encode_subscribe_ack(mode: int, epoch: int, primary_seq: int) -> bytes:
    return (
        bytes([mode]) + encode_varint64(epoch) + encode_varint64(primary_seq)
    )


def decode_subscribe_ack(body: bytes) -> tuple[int, int, int]:
    if not body:
        raise ProtocolError("empty subscribe ack")
    mode = body[0]
    if mode not in (SUB_MODE_WAL, SUB_MODE_SNAPSHOT):
        raise ProtocolError(f"unknown subscribe mode {mode}")
    try:
        epoch, pos = decode_varint64(body, 1)
        primary_seq, pos = decode_varint64(body, pos)
    except ValueError as exc:
        raise ProtocolError(f"bad subscribe ack: {exc}") from None
    if pos != len(body):
        raise ProtocolError("trailing bytes after subscribe ack")
    return mode, epoch, primary_seq


def encode_ship_records(records) -> bytes:
    """``records`` is an iterable of encoded WriteBatch records; each
    embeds its own base sequence, so none is repeated here."""
    records = list(records)
    out = bytearray([SHIP_RECORDS])
    out += encode_varint32(len(records))
    for record in records:
        out += encode_lp(record)
    return bytes(out)


def encode_ship_snap_begin(last_seq: int, n_files: int) -> bytes:
    return (
        bytes([SHIP_SNAP_BEGIN])
        + encode_varint64(last_seq)
        + encode_varint64(n_files)
    )


def encode_ship_snap_file(
    level: int, name: str, size: int, smallest: bytes, largest: bytes
) -> bytes:
    """``smallest``/``largest`` are the table's internal key bounds —
    the follower needs them to rebuild its manifest without re-reading
    every shipped table."""
    return (
        bytes([SHIP_SNAP_FILE])
        + encode_varint64(level)
        + encode_lp(name.encode("utf-8"))
        + encode_varint64(size)
        + encode_lp(smallest)
        + encode_lp(largest)
    )


def encode_ship_snap_chunk(data: bytes) -> bytes:
    return bytes([SHIP_SNAP_CHUNK]) + encode_lp(data)


def encode_ship_snap_end(last_seq: int) -> bytes:
    return bytes([SHIP_SNAP_END]) + encode_varint64(last_seq)


def encode_ship_goodbye(reason: str) -> bytes:
    return bytes([SHIP_GOODBYE]) + encode_lp(reason.encode("utf-8"))


def encode_ship_heartbeat(last_seq: int) -> bytes:
    """Idle heartbeat (protocol >= 2.2): proof of life plus the
    primary's current last sequence, sent when the WAL has nothing to
    ship so followers can tell "idle" from "black-holed"."""
    return bytes([SHIP_HEARTBEAT]) + encode_varint64(last_seq)


def decode_ship_body(body: bytes) -> tuple:
    """Decode one REPL_SHIP body → ``(kind, ...fields)``.

    Shapes: ``(SHIP_RECORDS, [record, ...])``,
    ``(SHIP_SNAP_BEGIN, last_seq, n_files)``,
    ``(SHIP_SNAP_FILE, level, name, size, smallest, largest)``,
    ``(SHIP_SNAP_CHUNK, data)``, ``(SHIP_SNAP_END, last_seq)``,
    ``(SHIP_GOODBYE, reason)``, ``(SHIP_HEARTBEAT, last_seq)``.
    """
    if not body:
        raise ProtocolError("empty ship body")
    kind = body[0]
    try:
        if kind == SHIP_RECORDS:
            count, pos = decode_varint64(body, 1)
            records = []
            for _ in range(count):
                record, pos = decode_lp(body, pos)
                records.append(record)
            if pos != len(body):
                raise ProtocolError("trailing bytes after ship records")
            return (kind, records)
        if kind == SHIP_SNAP_BEGIN:
            last_seq, pos = decode_varint64(body, 1)
            n_files, pos = decode_varint64(body, pos)
            return (kind, last_seq, n_files)
        if kind == SHIP_SNAP_FILE:
            level, pos = decode_varint64(body, 1)
            name, pos = decode_lp(body, pos)
            size, pos = decode_varint64(body, pos)
            smallest, pos = decode_lp(body, pos)
            largest, pos = decode_lp(body, pos)
            return (kind, level, name.decode("utf-8"), size, smallest, largest)
        if kind == SHIP_SNAP_CHUNK:
            data, pos = decode_lp(body, 1)
            return (kind, data)
        if kind == SHIP_SNAP_END:
            last_seq, pos = decode_varint64(body, 1)
            return (kind, last_seq)
        if kind == SHIP_GOODBYE:
            reason, pos = decode_lp(body, 1)
            return (kind, reason.decode("utf-8"))
        if kind == SHIP_HEARTBEAT:
            last_seq, pos = decode_varint64(body, 1)
            return (kind, last_seq)
    except ValueError as exc:
        raise ProtocolError(f"bad ship body: {exc}") from None
    raise ProtocolError(f"unknown ship kind {kind}")


def encode_repl_ack_body(acked_seq: int) -> bytes:
    return encode_varint64(acked_seq)


def decode_repl_ack_body(body: bytes) -> int:
    try:
        acked_seq, pos = decode_varint64(body, 0)
    except ValueError as exc:
        raise ProtocolError(f"bad repl ack: {exc}") from None
    if pos != len(body):
        raise ProtocolError("trailing bytes after repl ack")
    return acked_seq


# ------------------------------------------------- telemetry bodies
# METRICS body: u8 format                → OK lp exposition bytes
#   format 0 = JSON envelope (repro.obs.export.render_json)
#   format 1 = Prometheus text exposition
# TRACE   body: empty                    → OK lp utf-8 Chrome-trace JSON
#   (the serving DB's tracer, exported with Tracer.chrome_trace; empty
#   trace when the server's tracer is disabled)
METRICS_FMT_JSON = 0
METRICS_FMT_PROMETHEUS = 1


def encode_metrics_body(fmt: int = METRICS_FMT_JSON) -> bytes:
    if fmt not in (METRICS_FMT_JSON, METRICS_FMT_PROMETHEUS):
        raise ProtocolError(f"unknown metrics format {fmt}")
    return bytes([fmt])


def decode_metrics_body(body: bytes) -> int:
    if len(body) != 1:
        raise ProtocolError("metrics body must be one format byte")
    fmt = body[0]
    if fmt not in (METRICS_FMT_JSON, METRICS_FMT_PROMETHEUS):
        raise ProtocolError(f"unknown metrics format {fmt}")
    return fmt


# ------------------------------------------------- failover bodies
# PROMOTE body: varint min_epoch (0 = "just bump")  → OK varint new_epoch
#   Promotes the serving node to primary *online*: stops its follower
#   loop, bumps the replication epoch to max(current + 1, min_epoch),
#   and starts accepting writes.  ``min_epoch`` lets a failover
#   coordinator fence the old primary deterministically (it passes
#   highest-epoch-seen + 1) and makes retries idempotent: a node whose
#   epoch already reached min_epoch acks without bumping again.
def encode_promote_body(min_epoch: int = 0) -> bytes:
    return encode_varint64(min_epoch)


def decode_promote_body(body: bytes) -> int:
    if not body:
        return 0
    try:
        min_epoch, pos = decode_varint64(body, 0)
    except ValueError as exc:
        raise ProtocolError(f"bad promote body: {exc}") from None
    if pos != len(body):
        raise ProtocolError("trailing bytes after promote body")
    return min_epoch


def encode_promote_ack(new_epoch: int) -> bytes:
    return encode_varint64(new_epoch)


def decode_promote_ack(body: bytes) -> int:
    try:
        new_epoch, pos = decode_varint64(body, 0)
    except ValueError as exc:
        raise ProtocolError(f"bad promote ack: {exc}") from None
    if pos != len(body):
        raise ProtocolError("trailing bytes after promote ack")
    return new_epoch


# ------------------------------------------------------ stream helper
def iter_frames(data: bytes, limit: int = MAX_FRAME_BYTES) -> Iterator[bytes]:
    """Split a byte string of concatenated frames into payloads.

    Offline helper (tests, trace analysis); the server and clients read
    incrementally from their sockets instead.
    """
    pos = 0
    while pos < len(data):
        length = frame_length(data[pos : pos + 4], limit)
        pos += 4
        payload = decode_frame(length, data[pos : pos + length + 4])
        pos += length + 4
        yield payload
