"""Variable-length and fixed-width integer coding.

This is the wire format used throughout the SSTable, WAL, and block
layers: LEB128-style unsigned varints (as in LevelDB) plus fixed-width
little-endian 32/64-bit helpers.  All functions operate on ``bytes`` /
``bytearray`` and return ``(value, new_offset)`` pairs on the decode
side so callers can walk a buffer without slicing.
"""

from __future__ import annotations

import struct

__all__ = [
    "encode_varint32",
    "encode_varint64",
    "decode_varint32",
    "decode_varint64",
    "varint_length",
    "put_fixed32",
    "put_fixed64",
    "get_fixed32",
    "get_fixed64",
    "MAX_VARINT32_LEN",
    "MAX_VARINT64_LEN",
]

MAX_VARINT32_LEN = 5
MAX_VARINT64_LEN = 10

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")


class VarintError(ValueError):
    """Raised on malformed or out-of-range varint data."""


def encode_varint64(value: int) -> bytes:
    """Encode a non-negative integer < 2**64 as a LEB128 varint."""
    if value < 0 or value >= 1 << 64:
        raise VarintError(f"varint64 out of range: {value}")
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def encode_varint32(value: int) -> bytes:
    """Encode a non-negative integer < 2**32 as a LEB128 varint."""
    if value < 0 or value >= 1 << 32:
        raise VarintError(f"varint32 out of range: {value}")
    return encode_varint64(value)


def decode_varint64(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`VarintError` when
    the buffer is truncated or the encoding exceeds 64 bits.
    """
    result = 0
    shift = 0
    pos = offset
    n = len(buf)
    while True:
        if pos >= n:
            raise VarintError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result >= 1 << 64:
                raise VarintError("varint64 overflow")
            return result, pos
        shift += 7
        if shift >= 70:
            raise VarintError("varint too long")


def decode_varint32(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint and verify it fits in 32 bits."""
    value, pos = decode_varint64(buf, offset)
    if value >= 1 << 32:
        raise VarintError(f"varint32 overflow: {value}")
    return value, pos


def varint_length(value: int) -> int:
    """Number of bytes :func:`encode_varint64` uses for ``value``."""
    if value < 0:
        raise VarintError(f"negative varint: {value}")
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


def put_fixed32(value: int) -> bytes:
    """Little-endian fixed 32-bit encoding."""
    return _FIXED32.pack(value & 0xFFFFFFFF)


def put_fixed64(value: int) -> bytes:
    """Little-endian fixed 64-bit encoding."""
    return _FIXED64.pack(value & 0xFFFFFFFFFFFFFFFF)


def get_fixed32(buf, offset: int = 0) -> int:
    """Decode a little-endian fixed 32-bit integer at ``offset``."""
    return _FIXED32.unpack_from(buf, offset)[0]


def get_fixed64(buf, offset: int = 0) -> int:
    """Decode a little-endian fixed 64-bit integer at ``offset``."""
    return _FIXED64.unpack_from(buf, offset)[0]
