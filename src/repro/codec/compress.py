"""Block compression codecs (compaction steps S3 and S5).

The paper's testbed uses snappy.  We implement ``lz77``, a pure-Python
byte-oriented LZ77 codec with a snappy-like wire format (varint
uncompressed length, then a stream of literal/copy elements), so the
compress step costs substantially more CPU than decompress — the same
asymmetry the paper profiles ("step comp is almost the most costly …
step decomp takes the least amount of time").  ``zlib`` (fast C) and
``null`` (identity) codecs are provided for ablations that shift the
CPU/IO balance.

Wire format of ``lz77`` (after the varint length prefix):

* literal element:  ``0x00 | (n-1) << 2`` for n <= 60, else tag 60/61
  with 1/2 extra length bytes, followed by ``n`` literal bytes.
* copy element:     ``0x01 | (len-4) << 2 | (off_hi << 5)`` + 1 offset
  byte (len 4..11, offset < 2048), or ``0x02 | (len-1) << 2`` + 2
  little-endian offset bytes (len 1..64, offset < 65536).

This mirrors snappy's element taxonomy closely enough that the cost
profile and compression ratio on key-value data are comparable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

from .varint import decode_varint32, encode_varint32

__all__ = [
    "CompressionError",
    "lz77_compress",
    "lz77_decompress",
    "Codec",
    "CODECS",
    "get_codec",
]


class CompressionError(ValueError):
    """Raised on malformed compressed input."""


_MIN_MATCH = 4
_MAX_MATCH = 64
_MAX_OFFSET = 65535
_HASH_BITS = 14
_HASH_SIZE = 1 << _HASH_BITS
_HASH_MULT = 0x1E35A7BD


def _hash4(data: bytes, pos: int) -> int:
    word = (
        data[pos]
        | data[pos + 1] << 8
        | data[pos + 2] << 16
        | data[pos + 3] << 24
    )
    return ((word * _HASH_MULT) & 0xFFFFFFFF) >> (32 - _HASH_BITS)


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    while start < end:
        run = min(end - start, 0xFFFF + 1)
        n = run - 1
        if n < 60:
            out.append(n << 2)
        elif n < 256:
            out.append(60 << 2)
            out.append(n)
        else:
            out.append(61 << 2)
            out.append(n & 0xFF)
            out.append(n >> 8)
        out += data[start : start + run]
        start += run


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    # Prefer the compact 2-byte form when it fits.
    while length > 0:
        if 4 <= length <= 11 and offset < 2048:
            out.append(0x01 | ((length - 4) << 2) | ((offset >> 8) << 5))
            out.append(offset & 0xFF)
            return
        chunk = min(length, _MAX_MATCH)
        # Avoid leaving a sub-minimum tail that the 1-byte form can't encode;
        # the 2-byte form handles any length 1..64 so a tail is fine here.
        out.append(0x02 | ((chunk - 1) << 2))
        out.append(offset & 0xFF)
        out.append(offset >> 8)
        length -= chunk


def lz77_compress(data: bytes) -> bytes:
    """Compress ``data``; output starts with a varint of the input length."""
    n = len(data)
    out = bytearray(encode_varint32(n))
    if n < _MIN_MATCH + 1:
        if n:
            _emit_literal(out, data, 0, n)
        return bytes(out)

    table = [-1] * _HASH_SIZE
    pos = 0
    literal_start = 0
    limit = n - _MIN_MATCH
    while pos <= limit:
        h = _hash4(data, pos)
        cand = table[h]
        table[h] = pos
        if (
            cand >= 0
            and pos - cand <= _MAX_OFFSET
            and data[cand : cand + _MIN_MATCH] == data[pos : pos + _MIN_MATCH]
        ):
            # Extend the match forward.
            match_len = _MIN_MATCH
            max_len = min(_MAX_MATCH, n - pos)
            while (
                match_len < max_len
                and data[cand + match_len] == data[pos + match_len]
            ):
                match_len += 1
            if literal_start < pos:
                _emit_literal(out, data, literal_start, pos)
            _emit_copy(out, pos - cand, match_len)
            # Seed the table inside the match (sparsely, for speed).
            end = pos + match_len
            seed = pos + 1
            while seed < min(end, limit + 1):
                table[_hash4(data, seed)] = seed
                seed += 2
            pos = end
            literal_start = pos
        else:
            pos += 1
    if literal_start < n:
        _emit_literal(out, data, literal_start, n)
    return bytes(out)


def lz77_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`lz77_compress`.

    Raises :class:`CompressionError` on truncated or corrupt input,
    including a length-prefix mismatch.
    """
    try:
        expected, pos = decode_varint32(blob, 0)
    except ValueError as exc:
        raise CompressionError(str(exc)) from None
    out = bytearray()
    n = len(blob)
    try:
        while pos < n:
            tag = blob[pos]
            pos += 1
            kind = tag & 0x03
            if kind == 0x00:  # literal
                length = (tag >> 2) + 1
                if length == 61:
                    length = blob[pos] + 1
                    pos += 1
                elif length == 62:
                    length = (blob[pos] | blob[pos + 1] << 8) + 1
                    pos += 2
                if pos + length > n:
                    raise CompressionError("truncated literal")
                out += blob[pos : pos + length]
                pos += length
            elif kind == 0x01:  # 1-byte-offset copy
                length = ((tag >> 2) & 0x07) + 4
                offset = ((tag >> 5) << 8) | blob[pos]
                pos += 1
                _copy_back(out, offset, length)
            elif kind == 0x02:  # 2-byte-offset copy
                length = (tag >> 2) + 1
                offset = blob[pos] | blob[pos + 1] << 8
                pos += 2
                _copy_back(out, offset, length)
            else:
                raise CompressionError(f"bad element tag {tag:#x}")
    except IndexError:
        raise CompressionError("truncated input") from None
    if len(out) != expected:
        raise CompressionError(
            f"length mismatch: header says {expected}, decoded {len(out)}"
        )
    return bytes(out)


def _copy_back(out: bytearray, offset: int, length: int) -> None:
    if offset == 0 or offset > len(out):
        raise CompressionError(f"copy offset {offset} out of window")
    start = len(out) - offset
    if offset >= length:
        out += out[start : start + length]
    else:
        # Overlapping copy: replicate byte-by-byte (RLE-style).
        for i in range(length):
            out.append(out[start + i])


@dataclass(frozen=True)
class Codec:
    """A named compression codec."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


def _zlib_decompress(blob: bytes) -> bytes:
    try:
        return zlib.decompress(blob)
    except zlib.error as exc:
        raise CompressionError(str(exc)) from None


CODECS: dict[str, Codec] = {
    "null": Codec("null", lambda b: bytes(b), lambda b: bytes(b)),
    "lz77": Codec("lz77", lz77_compress, lz77_decompress),
    "zlib": Codec("zlib", lambda b: zlib.compress(b, 1), _zlib_decompress),
}


def get_codec(name: str) -> Codec:
    """Look up a codec by name (``null``, ``lz77``, ``zlib``)."""
    try:
        return CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(CODECS)}"
        ) from None
