"""Wire-format primitives: varints, checksums, and block compression."""

from .checksum import (
    CHECKSUMMERS,
    Checksummer,
    crc32,
    crc32c,
    get_checksummer,
    mask_crc,
    unmask_crc,
)
from .compress import (
    CODECS,
    Codec,
    CompressionError,
    get_codec,
    lz77_compress,
    lz77_decompress,
)
from .varint import (
    decode_varint32,
    decode_varint64,
    encode_varint32,
    encode_varint64,
    get_fixed32,
    get_fixed64,
    put_fixed32,
    put_fixed64,
    varint_length,
)

__all__ = [
    "CHECKSUMMERS",
    "CODECS",
    "Checksummer",
    "Codec",
    "CompressionError",
    "crc32",
    "crc32c",
    "decode_varint32",
    "decode_varint64",
    "encode_varint32",
    "encode_varint64",
    "get_checksummer",
    "get_codec",
    "get_fixed32",
    "get_fixed64",
    "lz77_compress",
    "lz77_decompress",
    "mask_crc",
    "put_fixed32",
    "put_fixed64",
    "unmask_crc",
    "varint_length",
]
