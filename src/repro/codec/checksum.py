"""Checksums used by the compaction pipeline (steps S2 and S6).

Two families are provided:

* :func:`crc32c` — a software, table-driven CRC-32C (Castagnoli), the
  polynomial LevelDB uses for block and log-record integrity.  The
  256-entry table is computed once at import.  A pure-Python CRC is
  deliberately *slow per byte*; the paper's point is that checksumming
  is real CPU work, and the cost model in :mod:`repro.core.costmodel`
  can be calibrated against this implementation.
* :func:`crc32` — zlib's CRC-32 (IEEE), a fast C implementation, for
  callers that want functional integrity checks without dominating the
  profile.

Both are exposed behind :class:`Checksummer` objects so the compaction
steps can be parameterised.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "crc32",
    "crc32c",
    "crc32c_py",
    "mask_crc",
    "unmask_crc",
    "Checksummer",
    "CHECKSUMMERS",
    "get_checksummer",
]

_CRC32C_POLY = 0x82F63B78  # reflected Castagnoli polynomial


def _build_table(poly: int) -> list[int]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _build_table(_CRC32C_POLY)


def crc32c_py(data: bytes, crc: int = 0) -> int:
    """Table-driven CRC-32C over ``data``, continuing from ``crc``.

    This is the byte-at-a-time software loop; use it when you want the
    checksum step to cost real CPU cycles (profiling, calibration).
    """
    crc = crc ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


# Public alias; kept distinct so tests can compare against known vectors.
crc32c = crc32c_py


def crc32(data: bytes, crc: int = 0) -> int:
    """zlib CRC-32 (IEEE) — fast C implementation."""
    return zlib.crc32(data, crc) & 0xFFFFFFFF


_MASK_DELTA = 0xA282EAD8


def mask_crc(crc: int) -> int:
    """LevelDB-style CRC masking.

    Storing a CRC of data that itself contains CRCs is hazardous; the
    stored value is rotated and offset so embedded checksums do not
    collide with the outer one.
    """
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & 0xFFFFFFFF


def unmask_crc(masked: int) -> int:
    """Inverse of :func:`mask_crc`."""
    rot = (masked - _MASK_DELTA) & 0xFFFFFFFF
    return ((rot >> 17) | (rot << 15)) & 0xFFFFFFFF


@dataclass(frozen=True)
class Checksummer:
    """A named checksum function with LevelDB-style masking helpers."""

    name: str
    fn: Callable[[bytes], int]

    def checksum(self, data: bytes) -> int:
        """Raw 32-bit checksum of ``data``."""
        return self.fn(data)

    def masked(self, data: bytes) -> int:
        """Masked checksum, safe to embed alongside the data."""
        return mask_crc(self.fn(data))

    def verify(self, data: bytes, masked: int) -> bool:
        """Check ``data`` against a stored masked checksum."""
        return self.fn(data) == unmask_crc(masked)


CHECKSUMMERS: dict[str, Checksummer] = {
    "crc32c": Checksummer("crc32c", crc32c_py),
    "crc32": Checksummer("crc32", crc32),
}


def get_checksummer(name: str) -> Checksummer:
    """Look up a checksummer by name (``crc32c`` or ``crc32``)."""
    try:
        return CHECKSUMMERS[name]
    except KeyError:
        raise KeyError(
            f"unknown checksummer {name!r}; available: {sorted(CHECKSUMMERS)}"
        ) from None
