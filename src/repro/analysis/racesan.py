"""Dynamic happens-before race sanitizer (``REPRO_RACE_SANITIZER=1``).

The lock-order sanitizer proves the engine's locks are *ordered*; this
module proves the shared state those locks guard is actually *reached
through them*.  It is a vector-clock happens-before detector in the
FastTrack tradition, sized for this codebase:

* Every thread carries a vector clock.  Clocks synchronize through the
  ``make_lock``/``make_rlock`` primitives (instrumented
  :class:`~repro.analysis.locksan.OrderedLock` objects call the hooks
  here), through ``queue.Queue`` handoffs, and through
  ``threading.Thread`` start/join — all patched in by :func:`install`
  when the sanitizer is enabled.
* Hot shared objects mark their state with :func:`shared_state` and
  call ``state.write()`` / ``state.read()`` at mutation/observation
  points (a no-op singleton when disabled, mirroring ``NULL_TRACER``).
  Two accesses to the same state that conflict (at least one write) and
  are not ordered by the happens-before relation raise
  :class:`DataRaceError` carrying **both** stack traces — where the
  prior access happened and where the unsynchronized one just did.
* :func:`guarded_by` declares a method's lock contract
  (``@guarded_by("_lock")``): under the sanitizer, entering the method
  without owning ``self._lock`` raises :class:`GuardViolation`.

Enable with::

    REPRO_RACE_SANITIZER=1 python -m pytest -x -q tests/db

Design notes.  Synchronization clocks are keyed per *instance* (lock
object, queue object), unlike the name-keyed lock-order graph: two
shards' ``db.mutex`` locks are distinct synchronization objects, and
merging them would invent happens-before edges that hide real races.
Queue transfer is modelled channel-wide (every ``get`` joins the clock
of every earlier ``put``), which over-approximates ordering — it can
miss a race routed through an unrelated queue item, never invent one.
All clock state lives behind one raw ``threading.Lock`` so the
sanitizer cannot recurse into its own instrumentation.
"""

from __future__ import annotations

import os
import queue as _queue_module
import threading
import traceback
from typing import Callable, Optional

__all__ = [
    "RACE_SANITIZER_ENV",
    "DataRaceError",
    "GuardViolation",
    "RaceDetector",
    "global_detector",
    "guarded_by",
    "install",
    "race_sanitizer_enabled",
    "shared_state",
    "uninstall",
]

RACE_SANITIZER_ENV = "REPRO_RACE_SANITIZER"

#: Frames of sanitizer plumbing trimmed off captured stacks.
_STACK_LIMIT = 14


def race_sanitizer_enabled() -> bool:
    """True when ``REPRO_RACE_SANITIZER`` is set non-empty, non-0."""
    return os.environ.get(RACE_SANITIZER_ENV, "") not in ("", "0")


class DataRaceError(RuntimeError):
    """Two unsynchronized conflicting accesses to a shared state."""


class GuardViolation(RuntimeError):
    """A ``@guarded_by`` method entered without owning its lock."""


def _capture_stack(skip: int = 2) -> str:
    frames = traceback.format_stack(limit=_STACK_LIMIT + skip)
    return "".join(frames[: -skip or None])


class _VarState:
    """Last-access bookkeeping for one shared variable."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        #: (tid, clock, thread name, stack) of the last write, or None.
        self.write: Optional[tuple[int, int, str, str]] = None
        #: tid -> (clock, thread name, stack) of reads since that write.
        self.reads: dict[int, tuple[int, str, str]] = {}


class RaceDetector:
    """Process-wide vector-clock state.

    Thread clocks are keyed by ``threading.get_ident()``; because the
    OS recycles idents, a per-ident epoch floor keeps a reused ident's
    fresh clock strictly above every value its predecessor published.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._thread_clocks: dict[int, dict[int, int]] = {}
        self._epoch_floor: dict[int, int] = {}
        self._sync_clocks: dict[object, dict[int, int]] = {}
        self._finished: dict[int, dict[int, int]] = {}
        self._vars: dict[object, _VarState] = {}
        self._var_labels: dict[object, str] = {}
        #: Race records (dicts), kept even though accesses raise, so
        #: harnesses can assert on what fired.
        self.races: list[dict] = []
        self.guard_violations: list[dict] = []
        self.raise_on_race = True

    # ------------------------------------------------------------ clocks
    def _vc(self, tid: int) -> dict[int, int]:
        vc = self._thread_clocks.get(tid)
        if vc is None:
            vc = {tid: self._epoch_floor.get(tid, 0) + 1}
            self._thread_clocks[tid] = vc
        return vc

    @staticmethod
    def _join(into: dict[int, int], other: dict[int, int]) -> None:
        for tid, clock in other.items():
            if into.get(tid, 0) < clock:
                into[tid] = clock

    def reset(self) -> None:
        """Drop all clocks, variables, and records (test isolation)."""
        with self._mutex:
            self._thread_clocks.clear()
            self._epoch_floor.clear()
            self._sync_clocks.clear()
            self._finished.clear()
            self._vars.clear()
            self._var_labels.clear()
            self.races.clear()
            self.guard_violations.clear()

    # --------------------------------------------------- synchronization
    def acquire(self, key: object) -> None:
        """The calling thread synchronized *from* ``key`` (lock
        acquired / queue item received): join the channel clock in."""
        tid = threading.get_ident()
        with self._mutex:
            channel = self._sync_clocks.get(key)
            if channel:
                self._join(self._vc(tid), channel)

    def release(self, key: object) -> None:
        """The calling thread synchronized *into* ``key`` (lock
        released / queue item sent): publish its clock and advance."""
        tid = threading.get_ident()
        with self._mutex:
            vc = self._vc(tid)
            channel = self._sync_clocks.setdefault(key, {})
            self._join(channel, vc)
            vc[tid] = vc.get(tid, 0) + 1

    def fork(self) -> dict[int, int]:
        """Snapshot for a child thread about to start; advances the
        parent so later parent work is unordered with the child."""
        tid = threading.get_ident()
        with self._mutex:
            vc = self._vc(tid)
            snapshot = dict(vc)
            vc[tid] = vc.get(tid, 0) + 1
        return snapshot

    def begin_thread(self, snapshot: dict[int, int]) -> None:
        """Adopt the parent's snapshot at the top of a child thread."""
        tid = threading.get_ident()
        with self._mutex:
            vc = dict(snapshot)
            vc[tid] = max(
                vc.get(tid, 0), self._epoch_floor.get(tid, 0)
            ) + 1
            self._thread_clocks[tid] = vc

    def finish_thread(self, thread_key: int) -> None:
        """Publish the dying thread's final clock for joiners."""
        tid = threading.get_ident()
        with self._mutex:
            vc = self._vc(tid)
            self._finished[thread_key] = dict(vc)
            self._epoch_floor[tid] = vc.get(tid, 0) + 1
            self._thread_clocks.pop(tid, None)

    def join_thread(self, thread_key: int) -> None:
        """The calling thread joined ``thread_key``: adopt its clock."""
        tid = threading.get_ident()
        with self._mutex:
            final = self._finished.get(thread_key)
            if final:
                self._join(self._vc(tid), final)

    # ---------------------------------------------------------- accesses
    def _record_race(
        self,
        label: str,
        kind: str,
        prior: tuple[int, int, str, str],
        stack_now: str,
    ) -> None:
        record = {
            "var": label,
            "access": kind,
            "thread": threading.current_thread().name,
            "stack_now": stack_now,
            "prior_thread": prior[2],
            "prior_stack": prior[3],
        }
        self.races.append(record)
        if self.raise_on_race:
            raise DataRaceError(
                f"data race on {label!r}: unsynchronized {kind} in thread "
                f"{record['thread']!r} conflicts with access in thread "
                f"{prior[2]!r}\n\n"
                f"current access:\n{stack_now.rstrip()}\n\n"
                f"prior access:\n{prior[3].rstrip()}"
            )

    def write(self, key: object, label: str) -> None:
        tid = threading.get_ident()
        name = threading.current_thread().name
        stack = _capture_stack(skip=3)
        with self._mutex:
            vc = self._vc(tid)
            state = self._vars.setdefault(key, _VarState())
            self._var_labels.setdefault(key, label)
            prev = state.write
            if prev is not None and prev[0] != tid and vc.get(prev[0], 0) < prev[1]:
                self._record_race(label, "write", prev, stack)
            for rtid, (clock, rname, rstack) in list(state.reads.items()):
                if rtid != tid and vc.get(rtid, 0) < clock:
                    self._record_race(
                        label, "write", (rtid, clock, rname, rstack), stack
                    )
            state.write = (tid, vc.get(tid, 0), name, stack)
            state.reads.clear()

    def read(self, key: object, label: str) -> None:
        tid = threading.get_ident()
        name = threading.current_thread().name
        stack = _capture_stack(skip=3)
        with self._mutex:
            vc = self._vc(tid)
            state = self._vars.setdefault(key, _VarState())
            self._var_labels.setdefault(key, label)
            prev = state.write
            if prev is not None and prev[0] != tid and vc.get(prev[0], 0) < prev[1]:
                self._record_race(label, "read", prev, stack)
            state.reads[tid] = (vc.get(tid, 0), name, stack)

    # ------------------------------------------------------------ guards
    def record_guard_violation(self, method: str, lock_name: str) -> None:
        record = {
            "method": method,
            "lock": lock_name,
            "thread": threading.current_thread().name,
            "stack": _capture_stack(skip=3),
        }
        self.guard_violations.append(record)
        raise GuardViolation(
            f"{method} requires {lock_name} but the calling thread "
            f"{record['thread']!r} does not own it\n\n{record['stack'].rstrip()}"
        )


_DETECTOR = RaceDetector()


def global_detector() -> RaceDetector:
    """The process-wide detector every hook reports into."""
    return _DETECTOR


# ----------------------------------------------------- instrumentation
class SharedState:
    """Handle marking one shared variable for the race detector."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def read(self) -> None:
        _DETECTOR.read(id(self), self.label)

    def write(self) -> None:
        _DETECTOR.write(id(self), self.label)


class _NullState:
    """Disabled shared-state handle: both hooks are no-ops."""

    __slots__ = ()

    def read(self) -> None:
        pass

    def write(self) -> None:
        pass


NULL_STATE = _NullState()


def shared_state(label: str) -> "SharedState | _NullState":
    """A shared-state marker; inert unless the sanitizer is enabled.

    Like ``make_lock``, the environment is consulted at *creation*
    time, so objects built before the sanitizer is enabled stay
    uninstrumented and cost nothing.
    """
    if race_sanitizer_enabled():
        install()
        return SharedState(label)
    return NULL_STATE


def guarded_by(lock_attr: str) -> Callable:
    """Declare that a method must run with ``self.<lock_attr>`` held.

    Checked only under the race sanitizer (the decorator consults the
    environment at decoration time and otherwise returns the function
    unchanged, so production code pays nothing).  The check relies on
    the instrumented locks' ownership tracking; a raw primitive (mixed
    configuration) is skipped rather than guessed at.
    """

    def decorator(func):
        if not race_sanitizer_enabled():
            return func
        import functools

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            lock = getattr(self, lock_attr, None)
            owned = getattr(lock, "_is_owned", None)
            if owned is not None and not owned():
                _DETECTOR.record_guard_violation(
                    f"{type(self).__name__}.{func.__name__}",
                    f"self.{lock_attr}",
                )
            return func(self, *args, **kwargs)

        return wrapper

    return decorator


# ------------------------------------------------------------ patching
_patch_lock = threading.Lock()
_installed = False
_orig_thread_start = None
_orig_thread_join = None
_orig_queue_put = None
_orig_queue_get = None


def install() -> None:
    """Patch ``threading.Thread`` start/join and ``queue.Queue``
    put/get with happens-before hooks.  Idempotent; called lazily by
    the first enabled :func:`shared_state` / lock factory."""
    global _installed, _orig_thread_start, _orig_thread_join
    global _orig_queue_put, _orig_queue_get
    with _patch_lock:
        if _installed:
            return
        _orig_thread_start = threading.Thread.start
        _orig_thread_join = threading.Thread.join
        _orig_queue_put = _queue_module.Queue.put
        _orig_queue_get = _queue_module.Queue.get

        def start(self):  # noqa: ANN001 - stdlib signature
            snapshot = _DETECTOR.fork()
            original_run = self.run

            def run_with_clock():
                _DETECTOR.begin_thread(snapshot)
                try:
                    original_run()
                finally:
                    _DETECTOR.finish_thread(id(self))

            self.run = run_with_clock
            return _orig_thread_start(self)

        def join(self, timeout=None):
            _orig_thread_join(self, timeout)
            if not self.is_alive():
                _DETECTOR.join_thread(id(self))

        def put(self, item, block=True, timeout=None):
            _DETECTOR.release(("queue", id(self)))
            return _orig_queue_put(self, item, block, timeout)

        def get(self, block=True, timeout=None):
            item = _orig_queue_get(self, block, timeout)
            _DETECTOR.acquire(("queue", id(self)))
            return item

        threading.Thread.start = start
        threading.Thread.join = join
        _queue_module.Queue.put = put
        _queue_module.Queue.get = get
        _installed = True


def uninstall() -> None:
    """Restore the original stdlib methods (test isolation)."""
    global _installed
    with _patch_lock:
        if not _installed:
            return
        threading.Thread.start = _orig_thread_start
        threading.Thread.join = _orig_thread_join
        _queue_module.Queue.put = _orig_queue_put
        _queue_module.Queue.get = _orig_queue_get
        _installed = False
