"""``python -m repro.analysis <paths>`` — run the RA verifier suite.

Mirrored by ``dbtool analyze``.  One invocation runs the per-file
RA1xx/RA2xx rules *and* the whole-program RA11x lock-graph pass over
the same paths.  ``--select`` narrows to specific codes, ``--format
text|json|sarif`` picks the report, ``--list-rules`` prints the
catalogue, ``--lock-graph dot|json`` dumps the static acquisition-
order graph instead of linting.

Exit codes (CI contract):

* ``0`` — clean (warning-tier findings may still be reported; they
  never fail the gate)
* ``1`` — at least one error-severity finding survived suppression
  and baseline
* ``2`` — a file could not be parsed (RA001): the analysis is
  incomplete, which is worse than findings

Baselines: ``--write-baseline findings.json`` adopts the current
findings, ``--baseline findings.json`` fails only on findings not in
the file (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import PARSE_ERROR_CODE, Finding, check_paths
from .lockgraph import (
    CYCLE_CODE,
    CYCLE_SUMMARY,
    SELF_DEADLOCK_CODE,
    SELF_DEADLOCK_SUMMARY,
    analyze_lock_graph,
)
from .report import render_json, render_sarif, render_text
from .rules import all_rules

__all__ = ["main", "build_parser", "run_analysis"]

#: Whole-program codes: not in the per-file registry, selectable anyway.
_GRAPH_CODES = {CYCLE_CODE, SELF_DEADLOCK_CODE}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Concurrency-invariant and durability static analysis for "
            "the pipelined-compaction stack (RA1xx/RA11x/RA2xx rules; "
            "see docs/ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--lock-graph",
        choices=["dot", "json"],
        default=None,
        help=(
            "dump the whole-program lock acquisition-order graph in "
            "the given format instead of linting"
        ),
    )
    parser.add_argument(
        "--no-lock-graph",
        action="store_true",
        help=(
            "skip the interprocedural RA110/RA111 pass (for trees "
            "that deliberately seed inversions, e.g. test fixtures)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings whose fingerprints are in FILE",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="adopt the current findings into FILE and exit 0",
    )
    return parser


def run_analysis(
    paths: Sequence[str],
    select: Optional[set[str]] = None,
    lock_graph: bool = True,
) -> list[Finding]:
    """Per-file rules + whole-program lock-graph pass, one sorted list."""
    rules = all_rules()
    if select is not None:
        rules = [rule for rule in rules if rule.code in select]
    findings = check_paths(paths, rules=rules)
    if lock_graph and (select is None or select & _GRAPH_CODES):
        graph_findings = analyze_lock_graph(paths).findings()
        if select is not None:
            graph_findings = [
                finding
                for finding in graph_findings
                if finding.code in select
            ]
        findings.extend(graph_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _exit_code(findings: Sequence[Finding]) -> int:
    if any(f.code == PARSE_ERROR_CODE for f in findings):
        return 2
    if any(f.severity == "error" for f in findings):
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into head/dot and the reader closed early —
        # not an analysis failure.
        return 0


def _main(argv: Optional[Sequence[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        catalogue = [(rule.code, rule.summary) for rule in all_rules()]
        catalogue += [
            (CYCLE_CODE, CYCLE_SUMMARY),
            (SELF_DEADLOCK_CODE, SELF_DEADLOCK_SUMMARY),
        ]
        for code, summary in sorted(catalogue):
            print(f"{code}  {summary}")
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    if args.lock_graph is not None:
        report = analyze_lock_graph(args.paths)
        print(
            report.to_dot()
            if args.lock_graph == "dot"
            else report.to_json()
        )
        return 0

    select: Optional[set[str]] = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        known = {rule.code for rule in all_rules()} | _GRAPH_CODES
        unknown = select - known
        if unknown:
            parser.error(f"unknown rule code(s): {sorted(unknown)}")
    findings = run_analysis(
        args.paths, select=select, lock_graph=not args.no_lock_graph
    )

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(
            f"wrote {len(findings)} finding(s) to baseline "
            f"{args.write_baseline}"
        )
        return 0
    suppressed = 0
    if args.baseline:
        findings, suppressed = apply_baseline(
            findings, load_baseline(args.baseline)
        )

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings))
        if suppressed:
            print(f"({suppressed} baselined finding(s) suppressed)")
    return _exit_code(findings)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
