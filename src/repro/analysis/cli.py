"""``python -m repro.analysis <paths>`` — run the RA rules, exit 1 on findings.

Mirrored by ``dbtool analyze``.  ``--select`` narrows to specific
codes, ``--format json`` emits the machine report, ``--list-rules``
prints the catalogue.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .engine import check_paths
from .report import render_json, render_text
from .rules import all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Concurrency-invariant static analysis for the pipelined-"
            "compaction stack (RA1xx rules; see docs/ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0
    if not args.paths:
        build_parser().error("no paths given (or use --list-rules)")
    rules = all_rules()
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            build_parser().error(f"unknown rule code(s): {sorted(unknown)}")
        rules = [rule for rule in rules if rule.code in wanted]
    findings = check_paths(args.paths, rules=rules)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
