"""The RA2xx durability / commit-protocol rules.

The engine's crash safety rests on one idiom, used by ``CURRENT``
installation, the cluster manifest, and every SSTable build::

    with storage.create(tmp) as f:
        f.append(payload)
        f.sync()              # durable *before* anything references it
    storage.rename(tmp, final)

PR 4's crash-point harness found each of these steps missing at least
once at runtime; these rules make the same bug classes unbuildable.
All are function-scoped AST heuristics in the house style — tuned for
zero false positives on the gated tree, ``# repro: noqa[CODE]`` for
the remainder:

* RA201 — ``rename()``/``os.replace()`` whose source path was written
  in the same function but never synced before the rename
* RA202 — a written-but-unsynced file handle while the function
  references files in a version edit (``FileMetaData``/``add_file``)
* RA203 — a ``*.tmp`` file created but never renamed into place
  (half a commit protocol)
* RA204 — manifest ``append()`` without ``sync=True`` (warning)

Ordering is judged lexically (line numbers), matching how the commit
protocol is actually written: straight-line create → write → sync →
rename sequences inside one function.
"""

from __future__ import annotations

import ast
from typing import Optional

from .engine import Finding
from .rules import _call_name, _expr_key, rule

__all__: list[str] = []

#: Callables that produce a writable handle for a path argument.
_CREATE_METHODS = {"create"}

#: Writes through a handle that put bytes at risk.
_WRITE_METHODS = {"append", "write", "writelines", "add_record"}

#: Durability points for a handle.
_SYNC_METHODS = {"sync", "fsync", "flush_and_sync"}

_RENAME_METHODS = {"rename", "replace"}


def _functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _arg_key(node: ast.expr) -> str:
    """Stable key for a path argument: literal value, dotted name, or
    unparsed source (whatever makes equal paths compare equal)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    key = _expr_key(node)
    return key if key is not None else ast.unparse(node)


class _Handle:
    """One ``create()`` result tracked through a function body."""

    __slots__ = ("path_key", "names", "line", "synced", "written", "write_line")

    def __init__(self, path_key: str, line: int) -> None:
        self.path_key = path_key
        #: local names the handle is reachable through (with-as, assign).
        self.names: set[str] = set()
        self.line = line
        self.synced = False
        self.written = False
        self.write_line = line


def _collect_handles(func: ast.AST) -> list[_Handle]:
    """Created handles with their write/sync history, in lexical order.

    Recognised bindings::

        with storage.create(p) as f: ...
        f = storage.create(p)

    A ``create()`` whose result is passed straight into a wrapper
    (``LogWriter(storage.create(p))``) is not tracked — the wrapper
    owns durability then, and its own call sites are linted instead.
    """
    handles: list[_Handle] = []
    by_name: dict[str, _Handle] = {}

    def create_path(call: ast.expr) -> Optional[str]:
        if (
            isinstance(call, ast.Call)
            and _call_name(call) in _CREATE_METHODS
            and call.args
        ):
            return _arg_key(call.args[0])
        return None

    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                path = create_path(item.context_expr)
                if path is None:
                    continue
                handle = _Handle(path, item.context_expr.lineno)
                if isinstance(item.optional_vars, ast.Name):
                    handle.names.add(item.optional_vars.id)
                    by_name[item.optional_vars.id] = handle
                handles.append(handle)
        elif isinstance(node, ast.Assign):
            path = create_path(node.value)
            if path is None:
                continue
            handle = _Handle(path, node.value.lineno)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    handle.names.add(target.id)
                    by_name[target.id] = handle
            handles.append(handle)

    # Second pass: attribute calls through the bound names.
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            continue
        handle = by_name.get(node.func.value.id)
        if handle is None:
            continue
        if node.func.attr in _WRITE_METHODS:
            handle.written = True
            handle.write_line = max(handle.write_line, node.lineno)
        elif node.func.attr in _SYNC_METHODS:
            handle.synced = True
    return handles


def _rename_calls(func: ast.AST) -> list[tuple[ast.Call, str]]:
    """``(call, src_key)`` for every rename/replace in the function,
    excluding forwarding bodies of methods named ``rename`` (storage
    adapters delegate; the delegating call is not a commit)."""
    if getattr(func, "name", "") in _RENAME_METHODS:
        return []
    out = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RENAME_METHODS
            and len(node.args) >= 2
        ):
            out.append((node, _arg_key(node.args[0])))
    return out


# ----------------------------------------------------------------- RA201
@rule("RA201", "rename of a written-but-unsynced path")
def _ra201_rename_without_sync(
    tree: ast.AST, source: str, path: str
) -> list[Finding]:
    """A rename only commits what the disk already has: renaming a
    path that was written in this function without an intervening
    ``sync()`` publishes a file whose bytes may still be in the page
    cache — a crash leaves the *renamed* name pointing at garbage,
    which is strictly worse than the old state."""
    findings = []
    for func in _functions(tree):
        handles = {h.path_key: h for h in _collect_handles(func)}
        for call, src_key in _rename_calls(func):
            handle = handles.get(src_key)
            if handle is None or handle.line > call.lineno:
                continue
            if not handle.synced:
                findings.append(
                    Finding(
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        code="RA201",
                        message=(
                            f"rename of {src_key!r} without syncing the "
                            "file written here first — a crash publishes "
                            "unsynced bytes under the committed name"
                        ),
                    )
                )
    return findings


# ----------------------------------------------------------------- RA202
def _edit_references(func: ast.AST) -> list[ast.Call]:
    """Calls that cite files in a version edit: ``FileMetaData(...)``
    constructions and ``<edit>.add_file(...)``."""
    out = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name == "FileMetaData" or (
            name == "add_file" and isinstance(node.func, ast.Attribute)
        ):
            out.append(node)
    return out


@rule("RA202", "file written but not synced before a version-edit reference")
def _ra202_unsynced_edit_reference(
    tree: ast.AST, source: str, path: str
) -> list[Finding]:
    """A version edit is the commit record: once the manifest names a
    file, recovery trusts it exists with its stated bytes.  A function
    that writes a file handle and then builds a ``FileMetaData`` /
    calls ``add_file`` without ever syncing that handle can commit a
    file the disk never finished."""
    findings = []
    for func in _functions(tree):
        unsynced = [
            h
            for h in _collect_handles(func)
            if h.written and not h.synced
        ]
        if not unsynced:
            continue
        for call in _edit_references(func):
            offenders = [h for h in unsynced if h.write_line < call.lineno]
            if not offenders:
                continue
            paths = ", ".join(repr(h.path_key) for h in offenders)
            findings.append(
                Finding(
                    path=path,
                    line=call.lineno,
                    col=call.col_offset,
                    code="RA202",
                    message=(
                        f"version-edit reference while {paths} was "
                        "written without sync() — the manifest may "
                        "commit a file the disk never finished"
                    ),
                )
            )
            break  # one finding per function is enough signal
    return findings


# ----------------------------------------------------------------- RA203
def _is_tmp_path(node: ast.expr, key: str) -> bool:
    """The path expression denotes a temporary file by naming idiom."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if sub.value.endswith(".tmp"):
                return True
    tail = key.rsplit(".", 1)[-1]
    return tail == "tmp" or tail.endswith("_tmp")


@rule("RA203", "tmp file created but never renamed into place")
def _ra203_orphan_tmp(tree: ast.AST, source: str, path: str) -> list[Finding]:
    """Creating ``*.tmp`` and stopping there is half a commit
    protocol: the write is invisible to readers and recovery treats
    the orphan as garbage.  Every tmp creation must be paired with the
    rename that installs it (in the same function — this codebase
    never splits the sequence across calls)."""
    findings = []
    for func in _functions(tree):
        renamed_srcs = {src for _call, src in _rename_calls(func)}
        if getattr(func, "name", "") in _RENAME_METHODS:
            continue
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and _call_name(node) in _CREATE_METHODS
                and node.args
            ):
                continue
            key = _arg_key(node.args[0])
            if not _is_tmp_path(node.args[0], key):
                continue
            if key in renamed_srcs:
                continue
            findings.append(
                Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="RA203",
                    message=(
                        f"tmp file {key!r} is created but never renamed "
                        "into place here — incomplete tmp→sync→rename "
                        "commit protocol"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------- RA204
_MANIFEST_RECEIVERS = {"manifest", "_manifest"}


def _manifest_writer_names(func: ast.AST) -> set[str]:
    names = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and (
            isinstance(node.value, ast.Call)
            and _call_name(node.value) == "ManifestWriter"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@rule("RA204", "manifest append without sync=True")
def _ra204_unsynced_manifest_append(
    tree: ast.AST, source: str, path: str
) -> list[Finding]:
    """Version edits delete data elsewhere (a flushed WAL, compacted
    input tables); an edit that is not durable before those deletions
    can lose acknowledged writes.  Every manifest ``append`` in engine
    code passes ``sync=True`` — flag the ones that forget.  Warning
    tier: batch-then-sync callers exist legitimately in tooling."""
    findings = []
    for func in _functions(tree):
        writer_names = _manifest_writer_names(func)
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
            ):
                continue
            receiver = node.func.value
            key = _expr_key(receiver)
            tail = key.rsplit(".", 1)[-1] if key else ""
            if tail not in _MANIFEST_RECEIVERS and tail not in writer_names:
                continue
            synced = any(
                kw.arg == "sync"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if synced or any(kw.arg is None for kw in node.keywords):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="RA204",
                    message=(
                        "manifest append without sync=True — the edit may "
                        "not be durable before the files it retires are "
                        "deleted"
                    ),
                )
            )
    return findings
