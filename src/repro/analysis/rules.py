"""The RA1xx concurrency-invariant rules.

Each rule is a function ``(tree, source, path) -> list[Finding]``
registered under a stable code.  Rules are *best-effort* AST
heuristics tuned for this codebase's idioms — they aim for zero false
positives on the tree they gate (``src tests benchmarks examples``),
with ``# repro: noqa[CODE]`` as the escape hatch for the remainder.

Catalogue (details + examples in docs/ANALYSIS.md):

* RA101 — ``Lock.acquire()`` outside ``with`` / try-finally
* RA102 — attribute written both with and without the class lock held
* RA103 — ``time.time()`` duration math in monotonic-clock code
* RA104 — ``threading.Thread`` without a ``name=`` (tracer attribution)
* RA105 — worker-loop ``except`` that swallows the exception
* RA106 — blocking ``queue.get()`` under a stop-flag loop (shutdown hang)
* RA107 — mutable default argument

The RA2xx durability rules live in :mod:`repro.analysis.durability`
and the RA11x whole-program lock-graph pass in
:mod:`repro.analysis.lockgraph`; both register here.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from .engine import Finding

__all__ = [
    "Rule",
    "SEVERITIES",
    "all_rules",
    "get_rule",
    "rule",
    "severity_for",
]

_REGISTRY: dict[str, "Rule"] = {}

#: Non-default severities; anything unlisted is an ``error``.  Warnings
#: are reported and baselined but do not fail the CI gate's exit code.
SEVERITIES: dict[str, str] = {
    "RA107": "warning",
    "RA204": "warning",
}


def severity_for(code: str) -> str:
    return SEVERITIES.get(code.upper(), "error")


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable code, one-line summary, checker."""

    code: str
    summary: str
    func: Callable[[ast.AST, str, str], list[Finding]]

    def check(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        return self.func(tree, source, path)


def rule(code: str, summary: str):
    """Register a checker function under ``code``."""

    def decorator(func):
        _REGISTRY[code] = Rule(code=code, summary=summary, func=func)
        return func

    return decorator


def all_rules() -> list[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code.upper()]


# --------------------------------------------------------------- helpers
#: Constructors whose result is treated as a lock-like object.  Includes
#: this repo's sanitizer factories so instrumented locks keep linting.
_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "OrderedLock",
    "make_lock",
    "make_rlock",
}

_THREADING_MODULES = {"threading", "_thread"}


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing name of the called function (``threading.Lock`` -> Lock)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_lock_ctor(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _LOCK_FACTORIES


def _expr_key(node: ast.expr) -> Optional[str]:
    """Dotted-name key for simple receivers: ``self._lock``, ``lock``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_key(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _lock_names(tree: ast.AST) -> set[str]:
    """Terminal names ever assigned a lock constructor in this module.

    Collects both plain names (``error_lock = threading.Lock()``) and
    attribute tails (``self._lock = threading.RLock()`` -> ``_lock``),
    so later ``x.acquire()`` receivers can be matched by their tail.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or not _is_lock_ctor(value):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "parent", None)


def _ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = _parent(node)
    while current is not None:
        yield current
        current = _parent(current)


def _enclosing_stmt(node: ast.AST) -> Optional[ast.stmt]:
    """The statement holding ``node`` directly inside a body list."""
    current: Optional[ast.AST] = node
    while current is not None:
        parent = _parent(current)
        if isinstance(current, ast.stmt) and parent is not None:
            for field in ("body", "orelse", "finalbody", "handlers"):
                block = getattr(parent, field, None)
                if isinstance(block, list) and current in block:
                    return current
        current = parent
    return None


def _sibling_block(stmt: ast.stmt) -> Optional[list[ast.stmt]]:
    parent = _parent(stmt)
    if parent is None:
        return None
    for field in ("body", "orelse", "finalbody"):
        block = getattr(parent, field, None)
        if isinstance(block, list) and stmt in block:
            return block
    return None


def _releases_in(nodes: list[ast.stmt], receiver_key: str) -> bool:
    return any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr == "release"
        and _expr_key(sub.func.value) == receiver_key
        for node in nodes
        for sub in ast.walk(node)
    )


def _in_finally(node: ast.AST) -> bool:
    current: Optional[ast.AST] = node
    while current is not None:
        parent = _parent(current)
        if isinstance(parent, ast.Try) and isinstance(current, ast.stmt):
            if current in parent.finalbody:
                return True
        current = parent
    return False


def _enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for ancestor in _ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Keep climbing: methods live inside the class.
            continue
    return None


def _is_lock_adapter(cls: ast.ClassDef) -> bool:
    """True for classes that *are* lock wrappers (define acquire+release)."""
    defined = {
        item.name
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return "acquire" in defined and "release" in defined


# ----------------------------------------------------------------- RA101
@rule("RA101", "Lock.acquire() outside a with statement or try/finally")
def _ra101_raw_acquire(tree: ast.AST, source: str, path: str) -> list[Finding]:
    """Flag ``<lock>.acquire()`` with no structural release guarantee.

    Accepted shapes: ``with lock:``; acquire immediately followed by a
    ``try`` whose ``finally`` releases the same receiver; acquire inside
    a ``try`` body whose ``finally`` releases it; acquire inside any
    ``finally`` block (the release-around-a-region re-acquire pattern).
    Methods of lock-adapter classes (defining both ``acquire`` and
    ``release``) are exempt — forwarding raw calls is their job.
    """
    lock_names = _lock_names(tree)
    if not lock_names:
        return []
    findings = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            continue
        receiver = node.func.value
        receiver_key = _expr_key(receiver)
        if receiver_key is None:
            continue
        tail = receiver_key.rsplit(".", 1)[-1]
        if tail not in lock_names:
            continue
        cls = _enclosing_class(node)
        if cls is not None and _is_lock_adapter(cls):
            continue
        if _in_finally(node):
            continue
        stmt = _enclosing_stmt(node)
        if stmt is None:
            continue
        # Inside a try body that releases in its finally?
        guarded = False
        current: Optional[ast.AST] = stmt
        while current is not None and not guarded:
            parent = _parent(current)
            if (
                isinstance(parent, ast.Try)
                and isinstance(current, ast.stmt)
                and current in parent.body
                and _releases_in(parent.finalbody, receiver_key)
            ):
                guarded = True
            current = parent
        # Immediately followed by such a try?
        if not guarded:
            block = _sibling_block(stmt)
            if block is not None:
                index = block.index(stmt)
                if index + 1 < len(block):
                    following = block[index + 1]
                    if isinstance(following, ast.Try) and _releases_in(
                        following.finalbody, receiver_key
                    ):
                        guarded = True
        if not guarded:
            findings.append(
                Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="RA101",
                    message=(
                        f"raw {receiver_key}.acquire() without a matching "
                        "structural release — use 'with' or try/finally"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------- RA102
_RA102_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


def _init_only_methods(cls: ast.ClassDef) -> set[str]:
    """Methods reachable (via self-calls) only from ``__init__``.

    Such helpers run before the object is shared between threads, so
    their unguarded writes are construction, not races.
    """
    methods = {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }

    def self_calls(func) -> set[str]:
        out = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in methods
            ):
                out.add(node.func.attr)
        return out

    callers: dict[str, set[str]] = {name: set() for name in methods}
    for name, func in methods.items():
        for callee in self_calls(func):
            callers[callee].add(name)

    init_only: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, callsites in callers.items():
            if name in init_only or name == "__init__":
                continue
            if callsites and all(
                caller == "__init__" or caller in init_only
                for caller in callsites
            ):
                init_only.add(name)
                changed = True
    return init_only


@rule("RA102", "attribute written both with and without the class lock held")
def _ra102_mixed_guard(tree: ast.AST, source: str, path: str) -> list[Finding]:
    """Per-class: if ``self.<attr>`` is assigned under ``with self.<lock>``
    in one method and outside any such block in another, the locking
    discipline is inconsistent (one of the two sites is a race)."""
    findings = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        lock_attrs.add(target.attr)
        if not lock_attrs:
            continue
        init_only = _init_only_methods(cls) | _RA102_EXEMPT_METHODS
        guarded_attrs: set[str] = set()
        unguarded_writes: dict[str, list[ast.AST]] = {}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            exempt = item.name in init_only
            for node in ast.walk(item):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        attr = target.attr
                        if attr in lock_attrs:
                            continue
                        if _under_self_lock(node, lock_attrs):
                            guarded_attrs.add(attr)
                        elif not exempt:
                            unguarded_writes.setdefault(attr, []).append(node)
        for attr in sorted(guarded_attrs & set(unguarded_writes)):
            for node in unguarded_writes[attr]:
                findings.append(
                    Finding(
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="RA102",
                        message=(
                            f"self.{attr} is written under the class lock "
                            "elsewhere but without it here — inconsistent "
                            "locking discipline"
                        ),
                    )
                )
    return findings


def _under_self_lock(node: ast.AST, lock_attrs: set[str]) -> bool:
    for ancestor in _ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                key = _expr_key(item.context_expr)
                if key is None and isinstance(item.context_expr, ast.Call):
                    key = _expr_key(item.context_expr.func)
                if key is None:
                    continue
                parts = key.split(".")
                if (
                    len(parts) >= 2
                    and parts[0] == "self"
                    and parts[1] in lock_attrs
                ):
                    return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


# ----------------------------------------------------------------- RA103
def _is_time_time(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "time"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "time"
    )


@rule("RA103", "time.time() duration math in code that uses perf_counter")
def _ra103_wall_clock_duration(
    tree: ast.AST, source: str, path: str
) -> list[Finding]:
    """In a module that already uses a monotonic clock, ``time.time()``
    feeding a subtraction is almost certainly a duration measured on the
    wall clock — NTP steps and DST corrupt it; use ``perf_counter``."""
    if "perf_counter" not in source:
        return []
    uses_monotonic = any(
        isinstance(node, ast.Attribute)
        and node.attr in ("perf_counter", "monotonic")
        or isinstance(node, ast.Name)
        and node.id in ("perf_counter", "monotonic")
        for node in ast.walk(tree)
    )
    if not uses_monotonic:
        return []
    findings = []
    scopes = [tree] + [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    flagged: set[int] = set()
    for scope in scopes:
        assigned_from_wall: dict[str, ast.Call] = {}
        subtracted_names: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_time_time(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned_from_wall[target.id] = node.value
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                for operand in (node.left, node.right):
                    if _is_time_time(operand) and id(operand) not in flagged:
                        flagged.add(id(operand))
                        findings.append(
                            _ra103_finding(operand, path)
                        )
                    if isinstance(operand, ast.Name):
                        subtracted_names.add(operand.id)
        for name in sorted(assigned_from_wall.keys() & subtracted_names):
            call = assigned_from_wall[name]
            if id(call) not in flagged:
                flagged.add(id(call))
                findings.append(_ra103_finding(call, path))
    return findings


def _ra103_finding(node: ast.AST, path: str) -> Finding:
    return Finding(
        path=path,
        line=node.lineno,
        col=node.col_offset,
        code="RA103",
        message=(
            "time.time() used for a duration in monotonic-clock code — "
            "use time.perf_counter() for spans and latencies"
        ),
    )


# ----------------------------------------------------------------- RA104
@rule("RA104", "threading.Thread created without a name=")
def _ra104_unnamed_thread(tree: ast.AST, source: str, path: str) -> list[Finding]:
    """Unnamed threads render as ``Thread-7`` in traces, which breaks
    the tracer's per-thread span attribution (one gantt track per
    thread name).  Every spawned thread must carry ``name=``."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_thread = (
            isinstance(func, ast.Attribute)
            and func.attr == "Thread"
            and isinstance(func.value, ast.Name)
            and func.value.id in _THREADING_MODULES
        ) or (isinstance(func, ast.Name) and func.id == "Thread")
        if not is_thread:
            continue
        if any(kw.arg == "name" for kw in node.keywords):
            continue
        if any(kw.arg is None for kw in node.keywords):  # **kwargs: unknowable
            continue
        findings.append(
            Finding(
                path=path,
                line=node.lineno,
                col=node.col_offset,
                code="RA104",
                message=(
                    "threading.Thread without name= — unnamed threads "
                    "break tracer span attribution"
                ),
            )
        )
    return findings


# ----------------------------------------------------------------- RA105
_BROAD_EXC = {"Exception", "BaseException"}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.id if isinstance(node, ast.Name) else getattr(node, "attr", "")
        if name in _BROAD_EXC:
            return True
    return False


@rule("RA105", "worker-loop except swallows the exception silently")
def _ra105_swallowed_exception(
    tree: ast.AST, source: str, path: str
) -> list[Finding]:
    """Inside a loop, a broad ``except`` whose body neither re-raises,
    returns, nor calls anything (log, metric, error sink) turns worker
    crashes into silent wedges — the loop spins on as if nothing
    happened and the failure is unobservable."""
    findings = []
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.While, ast.For, ast.AsyncFor)):
            continue
        for node in ast.walk(loop):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            handles = any(
                isinstance(sub, (ast.Raise, ast.Return, ast.Call))
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if handles:
                continue
            findings.append(
                Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="RA105",
                    message=(
                        "broad except inside a loop swallows the exception "
                        "without logging, recording, or re-raising"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------- RA106
_STOP_FLAG_RE = re.compile(
    r"(stop|closed|close|shutdown|shut_down|cancel|abort|quit|running"
    r"|alive|exit|finished|draining)",
    re.IGNORECASE,
)


def _boolean_operands(test: ast.expr) -> Iterator[ast.expr]:
    """Operands used directly as booleans (not inside comparisons)."""
    stack = [test]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BoolOp):
            stack.extend(node.values)
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            stack.append(node.operand)
        elif isinstance(node, (ast.Name, ast.Attribute, ast.Call)):
            yield node


def _has_stop_flag(test: ast.expr) -> bool:
    for operand in _boolean_operands(test):
        target = operand.func if isinstance(operand, ast.Call) else operand
        key = _expr_key(target)
        if key is not None and _STOP_FLAG_RE.search(key.rsplit(".", 1)[-1]):
            return True
    return False


@rule("RA106", "blocking queue.get() inside a stop-flag loop")
def _ra106_blocking_get(tree: ast.AST, source: str, path: str) -> list[Finding]:
    """A loop that checks a stop/closed flag but parks forever in a
    zero-argument ``.get()`` only re-checks the flag when an item
    happens to arrive — shutdown hangs until then.  Pass a timeout (or
    send a sentinel and prove the producer always does)."""
    findings = []
    for loop in ast.walk(tree):
        if not isinstance(loop, ast.While) or not _has_stop_flag(loop.test):
            continue
        for node in ast.walk(loop):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and not node.args
            ):
                continue
            kwarg_names = {kw.arg for kw in node.keywords}
            if kwarg_names & {"timeout", "block", None}:
                continue
            findings.append(
                Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="RA106",
                    message=(
                        "blocking .get() with no timeout inside a loop that "
                        "checks a stop flag — shutdown can hang; pass "
                        "timeout= and re-check the flag"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------- RA107
_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "OrderedDict", "deque"}


@rule("RA107", "mutable default argument")
def _ra107_mutable_default(tree: ast.AST, source: str, path: str) -> list[Finding]:
    """Default values are evaluated once at ``def`` time and shared by
    every call — and, in this codebase, by every *thread*."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_name(default) in _MUTABLE_CTORS
            )
            if mutable:
                findings.append(
                    Finding(
                        path=path,
                        line=default.lineno,
                        col=default.col_offset,
                        code="RA107",
                        message=(
                            "mutable default argument is shared across "
                            "calls (and threads) — default to None and "
                            "construct inside the function"
                        ),
                    )
                )
    return findings


# The RA2xx family registers itself via the ``rule`` decorator above;
# imported last so the decorator and helpers it needs already exist.
from . import durability  # noqa: E402,F401
