"""The lint engine: parse, run rules, apply ``# repro: noqa`` filters.

Rules live in :mod:`repro.analysis.rules`; this module owns everything
rule-agnostic — file discovery, parsing (with parent links attached so
rules can look outward from a node), suppression comments, and the
:class:`Finding` record the reporters consume.

Suppression grammar, on the offending line::

    something_bad()  # repro: noqa[RA101]
    other_bad()      # repro: noqa[RA103,RA105]
    anything_bad()   # repro: noqa

A bare ``noqa`` silences every rule on that line; the bracketed form
silences only the listed codes.  Suppressions are per-line, matching
the reported line of the finding.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "attach_parents",
    "check_paths",
    "check_source",
    "iter_python_files",
    "noqa_lines",
]

PARSE_ERROR_CODE = "RA001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``detail`` carries multi-line supporting evidence (witness paths
    for whole-program findings); it is rendered indented by the text
    reporter and excluded from baseline fingerprints, so line churn in
    the evidence never invalidates a suppression.  ``severity`` is
    ``error`` or ``warning`` (see :data:`repro.analysis.rules.SEVERITIES`).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    detail: str = ""
    severity: str = "error"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Stable identity for baseline matching: the file, the code,
        and the message — deliberately not the line number, so findings
        survive unrelated edits above them."""
        blob = f"{self.path}|{self.code}|{self.message}".encode()
        return hashlib.sha1(blob).hexdigest()[:16]

    def as_dict(self) -> dict:
        out = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint(),
        }
        if self.detail:
            out["detail"] = self.detail
        return out


def attach_parents(tree: ast.AST) -> ast.AST:
    """Set ``node.parent`` on every node (rules walk outward with it)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]
    return tree


def noqa_lines(source: str) -> dict[int, Optional[frozenset[str]]]:
    """Map 1-based line number -> suppressed codes (None = all codes)."""
    out: dict[int, Optional[frozenset[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return out


def check_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence] = None,
) -> list[Finding]:
    """Run the rule set over one source text; returns sorted findings."""
    from .rules import all_rules, severity_for

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    attach_parents(tree)
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        findings.extend(rule.check(tree, source, path))
    suppressed = noqa_lines(source)
    kept = []
    for finding in findings:
        codes = suppressed.get(finding.line, frozenset())
        if codes is None or finding.code in codes:
            continue
        severity = severity_for(finding.code)
        if severity != finding.severity:
            finding = replace(finding, severity=severity)
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d != "__pycache__" and not d.startswith(".")
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def check_paths(
    paths: Sequence[str], rules: Optional[Sequence] = None
) -> list[Finding]:
    """Run the rule set over files and directory trees."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(check_source(source, path=path, rules=rules))
    return findings
