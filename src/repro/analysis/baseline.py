"""Baseline files: adopt today's findings, alert only on new ones.

A baseline is a JSON file of finding fingerprints with multiplicities
(two identical findings in one file need two baseline slots, not a
blanket pardon).  Fingerprints hash ``path|code|message`` — not the
line number — so a suppressed finding survives unrelated edits above
it, and moves with the code until the message itself changes.

Workflow::

    python -m repro.analysis src --write-baseline findings.json
    # later, in CI:
    python -m repro.analysis src --baseline findings.json

The gate then fails only on findings that are not in the baseline;
fixing a baselined finding needs no bookkeeping (stale entries are
simply unused), though regenerating keeps the file honest.
"""

from __future__ import annotations

import json
from typing import Sequence

from .engine import Finding

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

_FORMAT = "repro-analysis-baseline/v1"


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    counts: dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"format": _FORMAT, "fingerprints": counts},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")


def load_baseline(path: str) -> dict[str, int]:
    with open(path, "r", encoding="utf-8") as handle:
        blob = json.load(handle)
    if blob.get("format") != _FORMAT:
        raise ValueError(
            f"{path} is not a {_FORMAT} file "
            f"(format={blob.get('format')!r})"
        )
    fingerprints = blob.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise ValueError(f"{path}: 'fingerprints' must be an object")
    return {str(k): int(v) for k, v in fingerprints.items()}


def apply_baseline(
    findings: Sequence[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline.

    Each fingerprint forgives up to its recorded multiplicity;
    occurrences beyond that are new findings.
    """
    budget = dict(baseline)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        fp = finding.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
