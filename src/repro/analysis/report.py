"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

SARIF is the interchange format CI forges ingest natively; the
renderer emits one run with the full rule catalogue (so viewers can
show summaries for rules that happened not to fire) and per-result
``partialFingerprints`` matching the baseline fingerprints, letting
SARIF-side dedup agree with ``--baseline``.
"""

from __future__ import annotations

import json
from typing import Sequence

from .engine import Finding

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col CODE message`` line per finding + summary.

    Multi-line ``detail`` blocks (witness paths from the whole-program
    passes) render indented under their finding.
    """
    if not findings:
        return "no findings"
    lines = []
    for finding in findings:
        tag = " (warning)" if finding.severity == "warning" else ""
        lines.append(
            f"{finding.location()} {finding.code}{tag} {finding.message}"
        )
        if finding.detail:
            lines.extend(
                f"    {detail_line}"
                for detail_line in finding.detail.rstrip().splitlines()
            )
    by_code: dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    summary = " ".join(f"{code}={n}" for code, n in sorted(by_code.items()))
    lines.append(f"{len(findings)} finding(s): {summary}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON document: finding list plus per-code counts."""
    by_code: dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    return json.dumps(
        {
            "findings": [finding.as_dict() for finding in findings],
            "counts": by_code,
            "total": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


def _rule_catalogue() -> list[dict]:
    from .lockgraph import CYCLE_CODE, CYCLE_SUMMARY, SELF_DEADLOCK_CODE, SELF_DEADLOCK_SUMMARY
    from .rules import all_rules

    catalogue = [
        {"id": rule.code, "shortDescription": {"text": rule.summary}}
        for rule in all_rules()
    ]
    catalogue += [
        {"id": CYCLE_CODE, "shortDescription": {"text": CYCLE_SUMMARY}},
        {
            "id": SELF_DEADLOCK_CODE,
            "shortDescription": {"text": SELF_DEADLOCK_SUMMARY},
        },
    ]
    catalogue.sort(key=lambda entry: entry["id"])
    return catalogue


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 document with one run over the analyzed tree."""
    results = []
    for finding in findings:
        message = finding.message
        if finding.detail:
            message = f"{message}\n{finding.detail.rstrip()}"
        results.append(
            {
                "ruleId": finding.code,
                "level": finding.severity,
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproAnalysis/v1": finding.fingerprint()
                },
            }
        )
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": (
                            "https://example.invalid/docs/ANALYSIS.md"
                        ),
                        "rules": _rule_catalogue(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
