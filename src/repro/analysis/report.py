"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Sequence

from .engine import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col CODE message`` line per finding + summary."""
    if not findings:
        return "no findings"
    lines = [
        f"{finding.location()} {finding.code} {finding.message}"
        for finding in findings
    ]
    by_code: dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    summary = " ".join(f"{code}={n}" for code, n in sorted(by_code.items()))
    lines.append(f"{len(findings)} finding(s): {summary}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON document: finding list plus per-code counts."""
    by_code: dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    return json.dumps(
        {
            "findings": [finding.as_dict() for finding in findings],
            "counts": by_code,
            "total": len(findings),
        },
        indent=2,
        sort_keys=True,
    )
