"""Dynamic lock-order sanitizer: ``OrderedLock`` + a process-wide graph.

Deadlocks in the pipelined stack are ordering bugs: thread 1 takes the
DB mutex then the cache lock while thread 2 takes them the other way
round.  Each :class:`OrderedLock` acquisition records, for every lock
the calling thread already holds, a directed *held -> acquiring* edge
in a shared :class:`LockGraph`.  The first edge that closes a cycle
raises :class:`LockOrderViolation` carrying **both** stacks — where
the conflicting order was first established and where it was just
contradicted — so the inversion is caught the first time the two code
paths ever run, not the unlucky run where they interleave into an
actual deadlock.

Enabling
========

The engine's locks are created through :func:`make_lock` /
:func:`make_rlock`.  By default these return plain ``threading``
primitives (zero overhead); with ``REPRO_LOCK_SANITIZER=1`` in the
environment they return instrumented :class:`OrderedLock` objects
feeding the process-wide graph, so any test run or workload doubles as
a deadlock detector::

    REPRO_LOCK_SANITIZER=1 python -m pytest -x -q

Instrumented locks: the DB mutex (which also guards the version set)
and its file-number lock, the block cache, the thread backend's stage/
error locks, the in-memory storage, and the observability registry and
tracer.  ``queue.Queue`` handoffs in the PCP backends need no edges:
their internal mutex is a leaf (never held across another acquire).

:class:`OrderedLock` also implements the private ``_release_save`` /
``_acquire_restore`` / ``_is_owned`` protocol, so it can back a
``threading.Condition`` (the DB's ``_bg_wake`` does exactly that).

With ``REPRO_RACE_SANITIZER=1`` (:mod:`repro.analysis.racesan`) the
factories also hand out :class:`OrderedLock` objects, used purely as
happens-before synchronization points: each outermost acquire/release
joins/publishes the owning thread's vector clock.  Both sanitizers can
run together; each hook is gated independently.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Optional

from . import racesan

__all__ = [
    "LOCK_SANITIZER_ENV",
    "LockGraph",
    "LockOrderViolation",
    "OrderedLock",
    "global_graph",
    "make_lock",
    "make_rlock",
    "sanitizer_enabled",
]

LOCK_SANITIZER_ENV = "REPRO_LOCK_SANITIZER"


def sanitizer_enabled() -> bool:
    """True when ``REPRO_LOCK_SANITIZER`` is set to a non-empty, non-0."""
    return os.environ.get(LOCK_SANITIZER_ENV, "") not in ("", "0")


class LockOrderViolation(RuntimeError):
    """Raised when an acquisition would close a cycle in the lock graph."""


def _capture_stack(skip: int = 2) -> str:
    """Formatted stack of the caller, minus sanitizer-internal frames."""
    frames = traceback.format_stack()
    return "".join(frames[: -skip or None])


class LockGraph:
    """Directed lock-order graph with first-seen stacks per edge.

    Nodes are lock *names* (two DBs both name their mutex ``db.mutex``:
    ordering discipline is per role, not per instance).  Thread-safe;
    the graph's own mutex is a raw ``threading.Lock`` so the sanitizer
    cannot recurse into itself.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: dict[tuple[str, str], str] = {}
        self._succ: dict[str, set[str]] = {}
        #: Violation records (dicts with ``cycle``/``stack_now``/
        #: ``prior_stacks`` keys), kept even though on_acquire raises,
        #: so harnesses can assert on what fired.
        self.violations: list[dict] = []

    def reset(self) -> None:
        """Drop all recorded edges and violations (test isolation)."""
        with self._mutex:
            self._edges.clear()
            self._succ.clear()
            self.violations.clear()

    def edges(self) -> list[tuple[str, str]]:
        with self._mutex:
            return sorted(self._edges)

    def _path(self, src: str, dst: str) -> Optional[list[str]]:
        """A directed path src -> ... -> dst, or None (caller holds mutex)."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for succ in self._succ.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def on_acquire(self, name: str, held: list[str]) -> None:
        """Record held->name edges; raise if one would close a cycle."""
        with self._mutex:
            for held_name in held:
                if held_name == name:
                    continue
                if (held_name, name) in self._edges:
                    continue
                back_path = self._path(name, held_name)
                if back_path is not None:
                    stack_now = _capture_stack(skip=3)
                    prior = [
                        (a, b, self._edges[(a, b)])
                        for a, b in zip(back_path, back_path[1:])
                    ]
                    # back_path runs name -> ... -> held_name; prepending
                    # held_name closes it via the edge being attempted now.
                    cycle = [held_name] + back_path
                    record = {
                        "cycle": cycle,
                        "acquiring": name,
                        "holding": held_name,
                        "stack_now": stack_now,
                        "prior_stacks": prior,
                    }
                    self.violations.append(record)
                    raise LockOrderViolation(self._format(record))
                self._edges[(held_name, name)] = _capture_stack(skip=3)
                self._succ.setdefault(held_name, set()).add(name)

    @staticmethod
    def _format(record: dict) -> str:
        lines = [
            "lock-order inversion detected: acquiring "
            f"{record['acquiring']!r} while holding {record['holding']!r} "
            f"closes the cycle {' -> '.join(record['cycle'])}",
            "",
            "conflicting acquisition (now):",
            record["stack_now"].rstrip(),
        ]
        for src, dst, stack in record["prior_stacks"]:
            lines += [
                "",
                f"prior order {src} -> {dst} first established here:",
                stack.rstrip(),
            ]
        return "\n".join(lines)


_GLOBAL_GRAPH = LockGraph()


def global_graph() -> LockGraph:
    """The process-wide graph every factory-made lock reports into."""
    return _GLOBAL_GRAPH


class _HeldState(threading.local):
    """Per-thread acquisition state: ordered names + per-lock depths."""

    def __init__(self) -> None:
        self.names: list[str] = []
        self.depth: dict[int, int] = {}


_HELD = _HeldState()


class OrderedLock:
    """A ``Lock``/``RLock`` that reports acquisitions to a LockGraph.

    Drop-in for the engine's internal locks: supports ``with``, the
    blocking/timeout ``acquire`` signature, and (in recursive mode) the
    private protocol ``threading.Condition`` needs.  Ordering edges are
    recorded *before* blocking on the underlying primitive, so a true
    deadlock raises instead of hanging.
    """

    def __init__(
        self,
        name: str,
        recursive: bool = False,
        graph: Optional[LockGraph] = None,
        track_order: bool = True,
    ) -> None:
        self.name = name
        self.recursive = recursive
        self.track_order = track_order
        self._graph = graph if graph is not None else _GLOBAL_GRAPH
        self._race = (
            racesan.global_detector()
            if racesan.race_sanitizer_enabled()
            else None
        )
        self._inner = threading.RLock() if recursive else threading.Lock()

    def __repr__(self) -> str:
        kind = "RLock" if self.recursive else "Lock"
        return f"OrderedLock({self.name!r}, {kind})"

    # ----------------------------------------------------- held tracking
    def _depth(self) -> int:
        return _HELD.depth.get(id(self), 0)

    def _note_acquired(self) -> None:
        key = id(self)
        depth = _HELD.depth.get(key, 0)
        _HELD.depth[key] = depth + 1
        if depth == 0:
            _HELD.names.append(self.name)

    def _note_released(self) -> None:
        key = id(self)
        depth = _HELD.depth.get(key, 0)
        if depth <= 1:
            _HELD.depth.pop(key, None)
            self._remove_held_name()
        else:
            _HELD.depth[key] = depth - 1

    def _remove_held_name(self) -> None:
        for index in range(len(_HELD.names) - 1, -1, -1):
            if _HELD.names[index] == self.name:
                del _HELD.names[index]
                return

    # ---------------------------------------------------------- lock API
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        outermost = self._depth() == 0
        if outermost and self.track_order:
            self._graph.on_acquire(self.name, list(_HELD.names))
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._note_acquired()
            if outermost and self._race is not None:
                self._race.acquire(("lock", id(self)))
        return ok

    def release(self) -> None:
        if self._race is not None and self._depth() == 1:
            self._race.release(("lock", id(self)))
        self._inner.release()
        self._note_released()

    def locked(self) -> bool:
        if self.recursive:
            return self._depth() > 0
        return self._inner.locked()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ---------------------- threading.Condition private-lock protocol
    def _is_owned(self) -> bool:
        if self.recursive:
            return self._inner._is_owned()
        return self._depth() > 0

    def _release_save(self):
        """Fully release (Condition.wait), returning restore state."""
        if self._race is not None:
            self._race.release(("lock", id(self)))
        depth = _HELD.depth.pop(id(self), 0)
        self._remove_held_name()
        if self.recursive:
            inner_state = self._inner._release_save()
        else:
            self._inner.release()
            inner_state = None
        return (inner_state, depth)

    def _acquire_restore(self, state) -> None:
        inner_state, depth = state
        if self.track_order:
            self._graph.on_acquire(self.name, list(_HELD.names))
        if self.recursive:
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        _HELD.depth[id(self)] = max(depth, 1)
        _HELD.names.append(self.name)
        if self._race is not None:
            self._race.acquire(("lock", id(self)))


def _instrumented() -> bool:
    """Either sanitizer wants factory locks wrapped."""
    if sanitizer_enabled():
        return True
    if racesan.race_sanitizer_enabled():
        racesan.install()
        return True
    return False


def make_lock(name: str) -> "threading.Lock | OrderedLock":
    """A non-recursive engine lock; instrumented when a sanitizer is on."""
    if _instrumented():
        return OrderedLock(name, track_order=sanitizer_enabled())
    return threading.Lock()


def make_rlock(name: str) -> "threading.RLock | OrderedLock":
    """A recursive engine lock; instrumented when a sanitizer is on."""
    if _instrumented():
        return OrderedLock(
            name, recursive=True, track_order=sanitizer_enabled()
        )
    return threading.RLock()
