"""Concurrency-invariant static analysis + dynamic lock-order sanitizer.

The pipelined compaction design (Eq. 2: ``B_pcp = l / max(t1, Σt2..6,
t7)``) moves every correctness property of this repo into threading
code: the PCP backends' queue handoffs, the DB's stall/flush locking,
the asyncio server's backpressure.  Generic linters cannot see an
un-context-managed ``Lock.acquire()``, a lock-order inversion against
the DB mutex, or a wall-clock ``time.time()`` duration in span code —
so this package checks those invariants itself, two ways:

* **Static** (:mod:`repro.analysis.engine`, :mod:`repro.analysis.rules`)
  — an AST lint engine with repo-specific RA1xx rules, ``# repro:
  noqa[CODE]`` suppression, and text/JSON reporters.  Run it with
  ``python -m repro.analysis <paths>`` or ``dbtool analyze``.
* **Dynamic** (:mod:`repro.analysis.locksan`) — an :class:`OrderedLock`
  wrapper that feeds a process-wide lock-order graph with cycle
  detection.  Enable with ``REPRO_LOCK_SANITIZER=1`` and the test
  suite doubles as a deadlock detector for the real engine locks.

See ``docs/ANALYSIS.md`` for the rule catalogue.
"""

from .engine import Finding, check_paths, check_source, iter_python_files
from .locksan import (
    LOCK_SANITIZER_ENV,
    LockGraph,
    LockOrderViolation,
    OrderedLock,
    global_graph,
    make_lock,
    make_rlock,
    sanitizer_enabled,
)
from .report import render_json, render_text
from .rules import Rule, all_rules, get_rule

__all__ = [
    "Finding",
    "LOCK_SANITIZER_ENV",
    "LockGraph",
    "LockOrderViolation",
    "OrderedLock",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "get_rule",
    "global_graph",
    "iter_python_files",
    "make_lock",
    "make_rlock",
    "render_json",
    "render_text",
    "sanitizer_enabled",
]
