"""Concurrency & durability verification: static passes + sanitizers.

The pipelined compaction design (Eq. 2: ``B_pcp = l / max(t1, Σt2..6,
t7)``) moves every correctness property of this repo into threading
code: the PCP backends' queue handoffs, the DB's stall/flush locking,
the asyncio server's backpressure.  Generic linters cannot see an
un-context-managed ``Lock.acquire()``, a lock-order inversion against
the DB mutex, or a rename that publishes unsynced bytes — so this
package checks those invariants itself, four ways:

* **Per-file static rules** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`, :mod:`repro.analysis.durability`) — an
  AST lint engine with repo-specific RA1xx concurrency and RA2xx
  durability/commit-protocol rules, ``# repro: noqa[CODE]``
  suppression, baselines, and text/JSON/SARIF reporters.  Run it with
  ``python -m repro.analysis <paths>`` or ``dbtool analyze``.
* **Whole-program static deadlock detection**
  (:mod:`repro.analysis.lockgraph`) — an interprocedural pass that
  resolves ``make_lock``/``make_rlock`` sites to named lock
  identities, propagates held-sets across call edges, and reports
  acquisition-order cycles (RA110) and non-recursive re-acquires
  (RA111) with both witness paths.
* **Dynamic lock-order sanitizer** (:mod:`repro.analysis.locksan`) —
  an :class:`OrderedLock` wrapper feeding a process-wide lock-order
  graph with cycle detection.  Enable with ``REPRO_LOCK_SANITIZER=1``.
* **Dynamic happens-before race sanitizer**
  (:mod:`repro.analysis.racesan`) — per-thread vector clocks
  synchronized through the lock factories, queues, and thread
  start/join; ``shared_state()``/``@guarded_by`` instrumentation on
  the hot shared objects flags unsynchronized conflicting accesses
  with both stacks.  Enable with ``REPRO_RACE_SANITIZER=1``.

See ``docs/ANALYSIS.md`` for the rule catalogue and workflows.
"""

from .engine import Finding, check_paths, check_source, iter_python_files
from .lockgraph import LockGraphReport, analyze_lock_graph
from .locksan import (
    LOCK_SANITIZER_ENV,
    LockGraph,
    LockOrderViolation,
    OrderedLock,
    global_graph,
    make_lock,
    make_rlock,
    sanitizer_enabled,
)
from .racesan import (
    RACE_SANITIZER_ENV,
    DataRaceError,
    GuardViolation,
    global_detector,
    guarded_by,
    race_sanitizer_enabled,
    shared_state,
)
from .report import render_json, render_sarif, render_text
from .rules import SEVERITIES, Rule, all_rules, get_rule, severity_for

__all__ = [
    "DataRaceError",
    "Finding",
    "GuardViolation",
    "LOCK_SANITIZER_ENV",
    "LockGraph",
    "LockGraphReport",
    "LockOrderViolation",
    "OrderedLock",
    "RACE_SANITIZER_ENV",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "analyze_lock_graph",
    "check_paths",
    "check_source",
    "get_rule",
    "global_detector",
    "global_graph",
    "guarded_by",
    "iter_python_files",
    "make_lock",
    "make_rlock",
    "race_sanitizer_enabled",
    "render_json",
    "render_sarif",
    "render_text",
    "sanitizer_enabled",
    "severity_for",
    "shared_state",
]
