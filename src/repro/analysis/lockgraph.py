"""Static interprocedural lock-graph deadlock detection (RA11x).

The runtime sanitizer (:mod:`repro.analysis.locksan`) catches lock-order
inversions on the interleavings a run actually exercises.  This module
is its static complement: it *proves* ordering properties over every
path the source admits, without running anything.

The pass works in three stages:

1. **Lock identity resolution.**  Every ``make_lock("name")`` /
   ``make_rlock("name")`` / ``OrderedLock("name")`` call site is
   resolved to its named identity, whether the result lands in a
   ``self.<attr>``, a module global, or a function local.
   ``threading.Condition(self._lock)`` aliases the backing lock, so
   ``with self._cond:`` and ``with self._lock:`` acquire the same node
   — exactly how the runtime graph sees them.

2. **Interprocedural held-set propagation.**  For every function the
   pass records which locks are held at each acquire and at each call,
   then walks call edges (resolved through ``self`` methods, typed
   attributes/locals, constructors, and a unique-method-name fallback)
   to compute the locks each call may *transitively* acquire.  A
   ``with self._unlocked()``-style region (any context manager whose
   name contains ``unlock``) conservatively clears the held set, so
   the DB's release-around-a-region idiom does not fabricate edges.

3. **Acquisition-order graph + cycles.**  Each "holding A, acquires B"
   fact becomes a directed edge carrying a witness path (the chain of
   source locations that realizes it).  Cycles are reported as RA110
   findings with the witness path of *every* edge in the cycle — both
   sides of the inversion.  Acquiring a non-recursive identity that
   may already be held is RA111 (static self-deadlock).

Like the runtime graph, nodes are lock *names*, not instances: two DBs
both call their mutex ``db.mutex`` because ordering discipline is per
role.  The analysis is deliberately under-approximate on calls it
cannot resolve (dynamic dispatch through listener lists, executors,
wire handlers) — those paths stay the runtime sanitizer's job — and
over-approximate on control flow (both branches of an ``if`` are
assumed reachable), which is what makes a clean report a proof of
ordering consistency for the resolved call graph.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .engine import Finding, iter_python_files, noqa_lines

__all__ = [
    "LockGraphReport",
    "analyze_lock_graph",
    "build_program",
    "CYCLE_CODE",
    "CYCLE_SUMMARY",
    "SELF_DEADLOCK_CODE",
    "SELF_DEADLOCK_SUMMARY",
]

CYCLE_CODE = "RA110"
CYCLE_SUMMARY = "static lock-order cycle across call paths"
SELF_DEADLOCK_CODE = "RA111"
SELF_DEADLOCK_SUMMARY = (
    "non-recursive lock re-acquired through a call chain"
)

#: Factory calls whose first positional string argument names the lock.
_LOCK_FACTORIES = {"make_lock": False, "make_rlock": True}
_ORDERED_LOCK = "OrderedLock"

#: Method names too generic for the unique-name fallback resolution —
#: linking ``x.get()`` to *the one class defining get* would be wrong
#: far more often than right.
_GENERIC_METHODS = {
    "acquire", "add", "append", "apply", "check", "clear", "close",
    "decode", "delete", "emit", "encode", "exists", "flush", "get",
    "inc", "items", "join", "keys", "list", "notify", "notify_all",
    "open", "pop", "pread", "put", "read", "record", "recv", "release",
    "remove", "rename", "run", "send", "set", "size", "start", "stop",
    "submit", "sync", "tell", "update", "values", "wait", "write",
}


# --------------------------------------------------------------- model
@dataclass
class _Step:
    """One hop of a witness path."""

    path: str
    line: int
    what: str

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "what": self.what}

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.what}"


@dataclass
class _Acquire:
    lock: str
    line: int
    held: tuple[tuple[str, int], ...]  # (lock name, acquire line)


@dataclass
class _CallSite:
    node: ast.Call
    line: int
    held: tuple[tuple[str, int], ...]


class _ClassInfo:
    def __init__(self, name: str, path: str, bases: list[str]) -> None:
        self.name = name
        self.path = path
        self.bases = bases
        self.attr_locks: dict[str, str] = {}
        self.attr_types: dict[str, str] = {}
        self.methods: dict[str, "_FuncInfo"] = {}


class _FuncInfo:
    def __init__(
        self,
        qualname: str,
        shortname: str,
        path: str,
        cls: Optional[_ClassInfo],
    ) -> None:
        self.qualname = qualname
        self.shortname = shortname
        self.path = path
        self.cls = cls
        self.params: set[str] = set()
        self.param_types: dict[str, str] = {}
        self.acquires: list[_Acquire] = []
        self.calls: list[_CallSite] = []


class _Program:
    def __init__(self) -> None:
        #: lock name -> (recursive, [(path, line) creation sites])
        self.locks: dict[str, tuple[bool, list[tuple[str, int]]]] = {}
        self.classes_by_name: dict[str, list[_ClassInfo]] = {}
        self.functions: dict[str, _FuncInfo] = {}
        self.functions_by_name: dict[str, list[_FuncInfo]] = {}
        #: method name -> every (class, func) defining it
        self.methods_by_name: dict[str, list[_FuncInfo]] = {}
        #: module-level variable name -> lock names it is bound to
        #: anywhere in the program (cross-module ``from x import lock``
        #: resolution; used only when the binding is unambiguous).
        self.global_locks: dict[str, set[str]] = {}
        #: per-file noqa map (applied to whole-program findings too)
        self.noqa: dict[str, dict] = {}

    def declare_lock(self, name: str, recursive: bool, path: str, line: int):
        entry = self.locks.get(name)
        if entry is None:
            self.locks[name] = (recursive, [(path, line)])
        else:
            rec, sites = entry
            sites.append((path, line))
            self.locks[name] = (rec or recursive, sites)

    def resolve_class(self, bare: str) -> list[_ClassInfo]:
        return self.classes_by_name.get(bare, [])


# --------------------------------------------- expression helpers
def _call_tail(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _lock_ctor_name(node: ast.expr) -> Optional[tuple[str, bool]]:
    """``(lock_name, recursive)`` for a lock-factory call, else None."""
    if not isinstance(node, ast.Call):
        return None
    tail = _call_tail(node)
    if tail in _LOCK_FACTORIES:
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            return node.args[0].value, _LOCK_FACTORIES[tail]
        return None
    if tail == _ORDERED_LOCK:
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            recursive = any(
                kw.arg == "recursive"
                and isinstance(kw.value, ast.Constant)
                and bool(kw.value.value)
                for kw in node.keywords
            ) or (
                len(node.args) > 1
                and isinstance(node.args[1], ast.Constant)
                and bool(node.args[1].value)
            )
            return node.args[0].value, recursive
        return None
    return None


def _condition_backing(node: ast.expr) -> Optional[ast.expr]:
    """The lock expression backing ``threading.Condition(lock)``."""
    if (
        isinstance(node, ast.Call)
        and _call_tail(node) == "Condition"
        and node.args
    ):
        return node.args[0]
    return None


def _ctor_class_name(node: ast.expr) -> Optional[str]:
    """Bare class name for ``ClassName(...)`` / ``x or ClassName(...)``."""
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            name = _ctor_class_name(value)
            if name is not None:
                return name
        return None
    if isinstance(node, ast.Call):
        tail = _call_tail(node)
        if tail is not None and tail[:1].isupper():
            return tail
    return None


def _annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """Bare class name of a simple annotation, unwrapping Optional[...]."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional[") : -1]
        return text.split(".")[-1] if text.isidentifier() or "." in text else None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = _annotation_class(node.value)
        if base == "Optional":
            return _annotation_class(node.slice)
    return None


def _is_unlock_region(node: ast.expr) -> bool:
    """True for context exprs like ``self._unlocked()`` (and for the
    conditional ``self._unlocked() if x else nullcontext()`` shape)."""
    if isinstance(node, ast.IfExp):
        return _is_unlock_region(node.body) or _is_unlock_region(node.orelse)
    if isinstance(node, ast.Call):
        tail = _call_tail(node)
        return tail is not None and "unlock" in tail.lower()
    return False


# ------------------------------------------------------------ collection
class _Collector:
    """Builds the program model for one parsed module."""

    def __init__(self, program: _Program, path: str) -> None:
        self.program = program
        self.path = path

    def collect_module(self, tree: ast.Module) -> None:
        module_locks: dict[str, str] = {}
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                self._collect_lock_assign(
                    stmt, module_locks, cls=None, local_types={}
                )
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt, module_locks)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(
                    stmt, cls=None, prefix="", outer_locks=module_locks
                )

    # ------------------------------------------------------- declarations
    def _collect_lock_assign(
        self,
        stmt: ast.Assign,
        lock_scope: dict[str, str],
        cls: Optional[_ClassInfo],
        local_types: dict[str, str],
    ) -> None:
        """Track lock factories, Condition aliases, and typed values."""
        value = stmt.value
        lock = _lock_ctor_name(value)
        backing = _condition_backing(value)
        ctor = _ctor_class_name(value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                if lock is not None:
                    name, recursive = lock
                    lock_scope[target.id] = name
                    self.program.declare_lock(
                        name, recursive, self.path, stmt.lineno
                    )
                elif backing is not None:
                    alias = self._lock_name_for(
                        backing, cls, lock_scope, local_types
                    )
                    if alias is not None:
                        lock_scope[target.id] = alias
                elif ctor is not None:
                    local_types[target.id] = ctor
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and cls is not None
            ):
                if lock is not None:
                    name, recursive = lock
                    cls.attr_locks[target.attr] = name
                    self.program.declare_lock(
                        name, recursive, self.path, stmt.lineno
                    )
                elif backing is not None:
                    alias = self._lock_name_for(
                        backing, cls, lock_scope, local_types
                    )
                    if alias is not None:
                        cls.attr_locks[target.attr] = alias
                elif ctor is not None:
                    cls.attr_types[target.attr] = ctor

    def _lock_name_for(
        self,
        node: ast.expr,
        cls: Optional[_ClassInfo],
        lock_scope: dict[str, str],
        local_types: dict[str, str],
    ) -> Optional[str]:
        """Resolve an expression to a lock identity, or None."""
        if isinstance(node, ast.Name):
            found = lock_scope.get(node.id)
            if found is not None:
                return found
            # Imported module-level lock: resolve by bare name when
            # the whole program binds it to exactly one lock identity.
            candidates = self.program.global_locks.get(node.id)
            if candidates is not None and len(candidates) == 1:
                return next(iter(candidates))
            return None
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == "self" and cls is not None:
                found = _lookup_attr_lock(self.program, cls, node.attr)
                if found is not None:
                    return found
            # ``obj._lock`` with obj of a known class (fixture idiom).
            owner = local_types.get(node.value.id)
            if owner is not None:
                for info in self.program.resolve_class(owner):
                    if node.attr in info.attr_locks:
                        return info.attr_locks[node.attr]
        return None

    # ------------------------------------------------------------ classes
    def _collect_class(
        self, node: ast.ClassDef, module_locks: dict[str, str]
    ) -> None:
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        cls = _ClassInfo(node.name, self.path, bases)
        self.program.classes_by_name.setdefault(node.name, []).append(cls)
        # Declarations first (any method may declare self attrs).
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for stmt in ast.walk(item):
                    if isinstance(stmt, ast.Assign):
                        self._collect_lock_assign(
                            stmt, {}, cls=cls, local_types={}
                        )
                self._collect_param_types(item, cls)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(
                    item,
                    cls=cls,
                    prefix=f"{node.name}.",
                    outer_locks=module_locks,
                )

    def _collect_param_types(self, func, cls: _ClassInfo) -> None:
        """``def __init__(self, db: DB)`` + ``self.x = db`` -> attr type."""
        params: dict[str, str] = {}
        for arg in func.args.args + func.args.kwonlyargs:
            hinted = _annotation_class(arg.annotation)
            if hinted is not None:
                params[arg.arg] = hinted
        if not params:
            return
        for stmt in ast.walk(func):
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id in params
            ):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(
                            target.attr, params[stmt.value.id]
                        )

    # ---------------------------------------------------------- functions
    def _collect_function(
        self,
        node,
        cls: Optional[_ClassInfo],
        prefix: str,
        outer_locks: dict[str, str],
    ) -> None:
        qualname = f"{self.path}::{prefix}{node.name}"
        info = _FuncInfo(qualname, f"{prefix}{node.name}", self.path, cls)
        for arg in node.args.args + node.args.kwonlyargs:
            info.params.add(arg.arg)
            hinted = _annotation_class(arg.annotation)
            if hinted is not None:
                info.param_types[arg.arg] = hinted
        self.program.functions[qualname] = info
        self.program.functions_by_name.setdefault(node.name, []).append(info)
        if cls is not None:
            cls.methods.setdefault(node.name, info)
            self.program.methods_by_name.setdefault(node.name, []).append(info)
        lock_scope = dict(outer_locks)
        local_types = dict(info.param_types)
        self._walk_body(
            node.body, (), info, lock_scope, local_types, prefix, outer_locks,
            func_name=node.name,
        )

    def _walk_body(
        self,
        stmts: Iterable[ast.stmt],
        held: tuple[tuple[str, int], ...],
        info: _FuncInfo,
        lock_scope: dict[str, str],
        local_types: dict[str, str],
        prefix: str,
        outer_locks: dict[str, str],
        func_name: str,
    ) -> None:
        for stmt in stmts:
            self._walk_stmt(
                stmt, held, info, lock_scope, local_types, prefix,
                outer_locks, func_name,
            )

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        held: tuple[tuple[str, int], ...],
        info: _FuncInfo,
        lock_scope: dict[str, str],
        local_types: dict[str, str],
        prefix: str,
        outer_locks: dict[str, str],
        func_name: str,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is its own summary (it runs later, on
            # whatever thread calls it) — but it closes over the outer
            # function's lock locals, so pass those down.
            nested_prefix = f"{prefix}{func_name}.<locals>."
            merged = dict(outer_locks)
            merged.update(lock_scope)
            self._collect_function(
                stmt, cls=info.cls, prefix=nested_prefix, outer_locks=merged
            )
            return
        if isinstance(stmt, ast.Assign):
            self._collect_lock_assign(stmt, lock_scope, info.cls, local_types)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in stmt.items:
                ctx = item.context_expr
                self._scan_calls(ctx, new_held, info, lock_scope, local_types)
                if _is_unlock_region(ctx):
                    # Conservatively treat the region as lock-free: the
                    # runtime has released the enclosing mutex here.
                    new_held = ()
                    continue
                lock = self._lock_name_for(ctx, info.cls, lock_scope, local_types)
                if lock is not None:
                    info.acquires.append(_Acquire(lock, ctx.lineno, new_held))
                    new_held = new_held + ((lock, ctx.lineno),)
            self._walk_body(
                stmt.body, new_held, info, lock_scope, local_types, prefix,
                outer_locks, func_name,
            )
            return
        # Every other compound statement: scan this statement's own
        # expressions, then recurse into nested blocks with the same
        # held set.
        for expr in _stmt_exprs(stmt):
            self._scan_calls(expr, held, info, lock_scope, local_types)
        for block in _stmt_blocks(stmt):
            self._walk_body(
                block, held, info, lock_scope, local_types, prefix,
                outer_locks, func_name,
            )

    def _scan_calls(
        self,
        expr: ast.expr,
        held: tuple[tuple[str, int], ...],
        info: _FuncInfo,
        lock_scope: dict[str, str],
        local_types: dict[str, str],
    ) -> None:
        """Record call sites and bare ``.acquire()`` events in ``expr``."""
        if expr is None:
            return
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Lambda,)):
                continue
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                ):
                    lock = self._lock_name_for(
                        node.func.value, info.cls, lock_scope, local_types
                    )
                    if lock is not None:
                        info.acquires.append(
                            _Acquire(lock, node.lineno, held)
                        )
                else:
                    info.calls.append(_CallSite(node, node.lineno, held))
            stack.extend(ast.iter_child_nodes(node))


def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """Expressions evaluated by ``stmt`` itself (not nested blocks)."""
    out = []
    for fld in ("value", "test", "iter", "exc", "msg", "target", "targets"):
        val = getattr(stmt, fld, None)
        if isinstance(val, ast.expr):
            out.append(val)
        elif isinstance(val, list):
            out.extend(v for v in val if isinstance(v, ast.expr))
    return out


def _stmt_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    out = []
    for fld in ("body", "orelse", "finalbody"):
        block = getattr(stmt, fld, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            out.append(block)
    handlers = getattr(stmt, "handlers", None)
    if handlers:
        for handler in handlers:
            out.append(handler.body)
    return out


def _lookup_attr_lock(
    program: _Program, cls: _ClassInfo, attr: str, seen: Optional[set] = None
) -> Optional[str]:
    if seen is None:
        seen = set()
    if id(cls) in seen:
        return None
    seen.add(id(cls))
    if attr in cls.attr_locks:
        return cls.attr_locks[attr]
    for base in cls.bases:
        for base_info in program.resolve_class(base):
            found = _lookup_attr_lock(program, base_info, attr, seen)
            if found is not None:
                return found
    return None


def _lookup_attr_type(
    program: _Program, cls: _ClassInfo, attr: str, seen: Optional[set] = None
) -> Optional[str]:
    if seen is None:
        seen = set()
    if id(cls) in seen:
        return None
    seen.add(id(cls))
    if attr in cls.attr_types:
        return cls.attr_types[attr]
    for base in cls.bases:
        for base_info in program.resolve_class(base):
            found = _lookup_attr_type(program, base_info, attr, seen)
            if found is not None:
                return found
    return None


def _lookup_method(
    program: _Program, cls: _ClassInfo, name: str, seen: Optional[set] = None
) -> Optional[_FuncInfo]:
    if seen is None:
        seen = set()
    if id(cls) in seen:
        return None
    seen.add(id(cls))
    if name in cls.methods:
        return cls.methods[name]
    for base in cls.bases:
        for base_info in program.resolve_class(base):
            found = _lookup_method(program, base_info, name, seen)
            if found is not None:
                return found
    return None


def _nested_visible(candidate: _FuncInfo, caller: _FuncInfo) -> bool:
    """Nested defs are only callable by name from their own enclosing
    function (or a sibling closure) — never from the rest of the
    program, where the bare name is a different binding entirely."""
    if ".<locals>." not in candidate.qualname:
        return True
    enclosing = candidate.qualname.rsplit(".<locals>.", 1)[0]
    return caller.qualname == enclosing or caller.qualname.startswith(
        enclosing + ".<locals>."
    )


# ------------------------------------------------------------ resolution
def _resolve_call(program: _Program, site: _CallSite, info: _FuncInfo,
                  local_types: Optional[dict] = None) -> list[_FuncInfo]:
    node = site.node
    func = node.func
    out: list[_FuncInfo] = []
    if isinstance(func, ast.Name):
        # A bare name that is one of the caller's parameters is a
        # callable argument — its target is dynamic, never the
        # same-named function elsewhere in the program.
        if func.id in info.params:
            return []
        out.extend(
            f
            for f in program.functions_by_name.get(func.id, ())
            if _nested_visible(f, info)
        )
        # Constructor: ClassName(...) runs __init__.
        for cls in program.resolve_class(func.id):
            init = cls.methods.get("__init__")
            if init is not None:
                out.append(init)
        # Only module-level functions, in-scope closures, and ctors by
        # bare name: drop methods that happened to share the name.
        out = [
            f
            for f in out
            if f.cls is None
            or f.shortname.endswith("__init__")
            or ".<locals>." in f.qualname
        ]
        return out
    if not isinstance(func, ast.Attribute):
        return out
    method = func.attr
    receiver = func.value
    # self.method(...)
    if isinstance(receiver, ast.Name) and receiver.id == "self":
        if info.cls is not None:
            found = _lookup_method(program, info.cls, method)
            if found is not None:
                return [found]
        return []
    # super().method(...)
    if (
        isinstance(receiver, ast.Call)
        and isinstance(receiver.func, ast.Name)
        and receiver.func.id == "super"
        and info.cls is not None
    ):
        for base in info.cls.bases:
            for base_info in program.resolve_class(base):
                found = _lookup_method(program, base_info, method)
                if found is not None:
                    return [found]
        return []
    owner: Optional[str] = None
    # self.attr.method(...)
    if (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
        and info.cls is not None
    ):
        owner = _lookup_attr_type(program, info.cls, receiver.attr)
    # local.method(...) via annotation or constructor assignment
    elif isinstance(receiver, ast.Name):
        if local_types:
            owner = local_types.get(receiver.id)
        if owner is None:
            owner = info.param_types.get(receiver.id)
    # ClassName(...).method(...)
    elif isinstance(receiver, ast.Call):
        owner = _ctor_class_name(receiver)
    if owner is not None:
        for cls in program.resolve_class(owner):
            found = _lookup_method(program, cls, method)
            if found is not None:
                out.append(found)
        if out:
            return out
    # Unique-method-name fallback for unresolvable receivers.
    if method not in _GENERIC_METHODS:
        candidates = program.methods_by_name.get(method, ())
        if len(candidates) == 1:
            return [candidates[0]]
    return out


# ----------------------------------------------------------- propagation
class _Propagator:
    def __init__(self, program: _Program) -> None:
        self.program = program
        self._memo: dict[str, dict[str, list[_Step]]] = {}
        self._in_progress: set[str] = set()

    def transitive_acquires(self, info: _FuncInfo) -> dict[str, list[_Step]]:
        """lock name -> witness chain reaching its acquire from ``info``."""
        cached = self._memo.get(info.qualname)
        if cached is not None:
            return cached
        if info.qualname in self._in_progress:
            return {}  # recursion: the fixpoint converges on first pass
        self._in_progress.add(info.qualname)
        result: dict[str, list[_Step]] = {}
        for acq in info.acquires:
            result.setdefault(
                acq.lock,
                [
                    _Step(
                        info.path,
                        acq.line,
                        f"{info.shortname} acquires {acq.lock!r}",
                    )
                ],
            )
        for site in info.calls:
            for callee in _resolve_call(self.program, site, info):
                if callee.qualname == info.qualname:
                    continue
                for lock, chain in self.transitive_acquires(callee).items():
                    if lock not in result:
                        result[lock] = [
                            _Step(
                                info.path,
                                site.line,
                                f"{info.shortname} calls {callee.shortname}",
                            )
                        ] + chain
        self._in_progress.discard(info.qualname)
        self._memo[info.qualname] = result
        return result


# ---------------------------------------------------------------- report
@dataclass
class _Edge:
    src: str
    dst: str
    witness: list[_Step] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "witness": [step.as_dict() for step in self.witness],
        }


@dataclass
class LockGraphReport:
    """The static acquisition-order graph plus its defects."""

    #: lock name -> {"recursive": bool, "declared": [(path, line), ...]}
    nodes: dict
    edges: list[_Edge]
    cycles: list[list[str]]
    self_deadlocks: list[tuple[str, list[_Step]]]

    def edge(self, src: str, dst: str) -> Optional[_Edge]:
        for edge in self.edges:
            if edge.src == src and edge.dst == dst:
                return edge
        return None

    def findings(self) -> list[Finding]:
        out = []
        for cycle in self.cycles:
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            detail_lines = []
            anchor: Optional[_Step] = None
            for src, dst in pairs:
                edge = self.edge(src, dst)
                if edge is None or not edge.witness:
                    continue
                if anchor is None:
                    anchor = edge.witness[0]
                detail_lines.append(f"order {src} -> {dst} established by:")
                detail_lines.extend(
                    "  " + step.render() for step in edge.witness
                )
            names = " -> ".join(cycle + [cycle[0]])
            out.append(
                Finding(
                    path=anchor.path if anchor else "<program>",
                    line=anchor.line if anchor else 1,
                    col=0,
                    code=CYCLE_CODE,
                    message=(
                        f"static lock-order cycle {names}: these locks are "
                        "acquired in conflicting orders on different paths"
                    ),
                    detail="\n".join(detail_lines),
                )
            )
        for lock, chain in self.self_deadlocks:
            anchor = chain[-1] if chain else None
            out.append(
                Finding(
                    path=anchor.path if anchor else "<program>",
                    line=anchor.line if anchor else 1,
                    col=0,
                    code=SELF_DEADLOCK_CODE,
                    message=(
                        f"non-recursive lock {lock!r} may be acquired while "
                        "already held (self-deadlock)"
                    ),
                    detail="\n".join(step.render() for step in chain),
                )
            )
        return out

    # ------------------------------------------------------------- dumps
    def to_json(self) -> str:
        return json.dumps(
            {
                "nodes": {
                    name: {
                        "recursive": meta["recursive"],
                        "declared": [
                            {"path": p, "line": ln}
                            for p, ln in meta["declared"]
                        ],
                    }
                    for name, meta in sorted(self.nodes.items())
                },
                "edges": [edge.as_dict() for edge in self.edges],
                "cycles": self.cycles,
                "self_deadlocks": [
                    {
                        "lock": lock,
                        "witness": [step.as_dict() for step in chain],
                    }
                    for lock, chain in self.self_deadlocks
                ],
            },
            indent=2,
            sort_keys=True,
        )

    def to_dot(self) -> str:
        cycle_edges = set()
        for cycle in self.cycles:
            cycle_edges.update(zip(cycle, cycle[1:] + cycle[:1]))
        lines = [
            "digraph lock_order {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace"];',
        ]
        for name, meta in sorted(self.nodes.items()):
            shape = "box, peripheries=2" if meta["recursive"] else "box"
            lines.append(f'  "{name}" [shape={shape}];')
        for edge in sorted(self.edges, key=lambda e: (e.src, e.dst)):
            attrs = ""
            if (edge.src, edge.dst) in cycle_edges:
                attrs = ' [color=red, penwidth=2]'
            lines.append(f'  "{edge.src}" -> "{edge.dst}"{attrs};')
        lines.append("}")
        return "\n".join(lines)


# ------------------------------------------------------------- top level
def build_program(paths: Sequence[str]) -> _Program:
    """Parse every ``.py`` under ``paths`` into the whole-program model.

    Two phases: module-level lock bindings are registered for every
    file first, so a ``from one import cache_lock`` reference in a
    file collected earlier than its definition still resolves.
    """
    program = _Program()
    parsed: list[tuple[str, ast.Module]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # the per-file engine reports RA001 for this
        program.noqa[path] = noqa_lines(source)
        parsed.append((path, tree))
    for _path, tree in parsed:
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            lock = _lock_ctor_name(stmt.value)
            if lock is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    program.global_locks.setdefault(
                        target.id, set()
                    ).add(lock[0])
    for path, tree in parsed:
        _Collector(program, path).collect_module(tree)
    return program


def _shortest_cycle(succ: dict[str, set[str]], start: str) -> Optional[list[str]]:
    """Shortest cycle through ``start`` (BFS), as a node list."""
    frontier = [[start]]
    seen = {start}
    while frontier:
        next_frontier = []
        for path in frontier:
            for nxt in sorted(succ.get(path[-1], ())):
                if nxt == start and len(path) > 1:
                    return path
                if nxt == start and len(path) == 1:
                    return path  # direct self-loop
                if nxt not in seen:
                    seen.add(nxt)
                    next_frontier.append(path + [nxt])
        frontier = next_frontier
    return None


def analyze_lock_graph(paths: Sequence[str]) -> LockGraphReport:
    """Run the whole-program pass and return the graph report."""
    program = build_program(paths)
    propagator = _Propagator(program)
    edges: dict[tuple[str, str], _Edge] = {}
    self_deadlocks: list[tuple[str, list[_Step]]] = []
    seen_self: set[tuple[str, str, int]] = set()
    for info in program.functions.values():
        for acq in info.acquires:
            held_names = {name for name, _ in acq.held}
            for held_name, held_line in acq.held:
                if held_name == acq.lock:
                    recursive = program.locks.get(acq.lock, (False, []))[0]
                    key = (acq.lock, info.path, acq.line)
                    if not recursive and key not in seen_self:
                        seen_self.add(key)
                        self_deadlocks.append(
                            (
                                acq.lock,
                                [
                                    _Step(
                                        info.path,
                                        held_line,
                                        f"{info.shortname} acquires "
                                        f"{acq.lock!r}",
                                    ),
                                    _Step(
                                        info.path,
                                        acq.line,
                                        f"{info.shortname} re-acquires "
                                        f"{acq.lock!r}",
                                    ),
                                ],
                            )
                        )
                    continue
                key = (held_name, acq.lock)
                if key not in edges:
                    edges[key] = _Edge(
                        held_name,
                        acq.lock,
                        [
                            _Step(
                                info.path,
                                held_line,
                                f"{info.shortname} acquires {held_name!r}",
                            ),
                            _Step(
                                info.path,
                                acq.line,
                                f"{info.shortname} acquires {acq.lock!r} "
                                f"while holding {held_name!r}",
                            ),
                        ],
                    )
            del held_names
        for site in info.calls:
            if not site.held:
                continue
            for callee in _resolve_call(program, site, info):
                if callee.qualname == info.qualname:
                    continue
                acquired = propagator.transitive_acquires(callee)
                for lock, chain in acquired.items():
                    for held_name, held_line in site.held:
                        if held_name == lock:
                            recursive = program.locks.get(lock, (False, []))[0]
                            key2 = (lock, info.path, site.line)
                            if not recursive and key2 not in seen_self:
                                seen_self.add(key2)
                                self_deadlocks.append(
                                    (
                                        lock,
                                        [
                                            _Step(
                                                info.path,
                                                held_line,
                                                f"{info.shortname} acquires "
                                                f"{lock!r}",
                                            ),
                                            _Step(
                                                info.path,
                                                site.line,
                                                f"{info.shortname} calls "
                                                f"{callee.shortname} while "
                                                f"holding {lock!r}",
                                            ),
                                        ]
                                        + chain,
                                    )
                                )
                            continue
                        key = (held_name, lock)
                        if key not in edges:
                            edges[key] = _Edge(
                                held_name,
                                lock,
                                [
                                    _Step(
                                        info.path,
                                        held_line,
                                        f"{info.shortname} acquires "
                                        f"{held_name!r}",
                                    ),
                                    _Step(
                                        info.path,
                                        site.line,
                                        f"{info.shortname} calls "
                                        f"{callee.shortname} while holding "
                                        f"{held_name!r}",
                                    ),
                                ]
                                + chain,
                            )
    # Cycle detection over the name graph.
    succ: dict[str, set[str]] = {}
    for src, dst in edges:
        succ.setdefault(src, set()).add(dst)
    cycles: list[list[str]] = []
    seen_cycles: set[frozenset] = set()
    for node in sorted(succ):
        cycle = _shortest_cycle(succ, node)
        if cycle is None:
            continue
        key = frozenset(cycle)
        if key in seen_cycles:
            continue
        seen_cycles.add(key)
        cycles.append(cycle)
    nodes = {
        name: {"recursive": recursive, "declared": sites}
        for name, (recursive, sites) in program.locks.items()
    }
    report = LockGraphReport(
        nodes=nodes,
        edges=sorted(edges.values(), key=lambda e: (e.src, e.dst)),
        cycles=cycles,
        self_deadlocks=self_deadlocks,
    )
    # Honor per-line ``# repro: noqa[RA110/RA111]`` at each finding's
    # anchor (seeded fixtures in test trees rely on this).
    kept_cycles, kept_self = [], []
    for cycle, finding in zip(report.cycles, report.findings()):
        codes = program.noqa.get(finding.path, {}).get(
            finding.line, frozenset()
        )
        if codes is None or finding.code in codes:
            continue
        kept_cycles.append(cycle)
    offset = len(report.cycles)
    for (lock, chain), finding in zip(
        report.self_deadlocks, report.findings()[offset:]
    ):
        codes = program.noqa.get(finding.path, {}).get(
            finding.line, frozenset()
        )
        if codes is None or finding.code in codes:
            continue
        kept_self.append((lock, chain))
    report.cycles = kept_cycles
    report.self_deadlocks = kept_self
    return report
