"""Begin/end span tracing with Chrome trace-event export.

The paper's whole argument is a timeline claim — PCP overlaps S1/S7
I/O with S2–S6 compute (Eqs. 1–2) — so the engine needs to *show* its
timeline on live runs, not only in the offline simulator.  A
:class:`Tracer` records wall-clock spans with thread attribution; the
compaction backends emit one span per S1–S7 step per sub-task, and the
DB adds flush / stall / compaction umbrella spans.  Export targets:

* **Chrome trace-event JSON** (:meth:`Tracer.chrome_trace`), loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` — one
  track per thread, so a real PCP run renders exactly like the paper's
  Fig. 6/7 overlap diagrams.
* **ASCII gantt** (:meth:`Tracer.render_gantt`), reusing the
  :mod:`repro.bench.gantt` renderer the simulator timelines use.

Overhead: a *disabled* tracer's :meth:`~Tracer.span` returns a shared
no-op context manager — no allocation, no clock read, no lock — so
instrumentation can stay in place on hot paths.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..analysis.locksan import make_lock

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "current_trace_context",
    "new_span_id",
    "new_trace_id",
    "pipeline_overlap",
    "trace_context",
]


# --------------------------------------------------------------- trace ids
#
# Distributed tracing needs ids that survive process boundaries: a
# *trace id* names one end-to-end request (minted by the client, carried
# in v2.1 request frames), and *span ids* name the nodes of its tree so
# a child span can point at its parent across a merged multi-process
# trace.  Ids are 48-bit ints — compact as varints on the wire, and the
# per-process random base makes span ids collision-free across the
# client / primary / follower processes that end up in one merged trace.

_SPAN_ID_BASE = int.from_bytes(os.urandom(3), "big") << 24
_span_counter = itertools.count(1)
_context = threading.local()


def new_trace_id() -> int:
    """A fresh random 48-bit trace id (non-zero)."""
    return int.from_bytes(os.urandom(6), "big") or 1


def new_span_id() -> int:
    """A fresh span id, unique within and across processes."""
    # next() on itertools.count is atomic under the GIL.
    return _SPAN_ID_BASE + next(_span_counter)


def current_trace_context() -> Optional[tuple[int, int]]:
    """The calling thread's ``(trace_id, parent_span_id)``, or None."""
    return getattr(_context, "value", None)


@contextmanager
def trace_context(trace_id: int, span_id: int):
    """Bind a trace context to the calling thread.

    While bound, every span recorded on this thread is stamped with
    ``trace_id``/``span_id``/``parent_span_id`` args and nested spans
    chain their parent ids — this is how a server worker thread links
    the DB/stall/replication spans it triggers back to the client span
    that sent the request.
    """
    prev = getattr(_context, "value", None)
    _context.value = (trace_id, span_id)
    try:
        yield
    finally:
        _context.value = prev


@dataclass(frozen=True)
class Span:
    """One completed interval: [start, end) seconds since tracer epoch."""

    name: str
    cat: str
    start: float
    end: float
    thread: str
    tid: int
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """Shared no-op context manager: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanScope:
    """Context manager that appends one Span on exit.

    When the calling thread carries a trace context the span is stamped
    with ``trace_id``/``span_id``/``parent_span_id`` and becomes the
    parent of any span nested inside it; with no context bound the
    extra cost is a single ``getattr``.
    """

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start",
                 "_ctx", "_span_id")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_SpanScope":
        ctx = getattr(_context, "value", None)
        self._ctx = ctx
        if ctx is not None:
            self._span_id = new_span_id()
            _context.value = (ctx[0], self._span_id)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        thread = threading.current_thread()
        args = self._args
        ctx = self._ctx
        if ctx is not None:
            _context.value = ctx
            args = dict(args)
            args["trace_id"] = ctx[0]
            args["span_id"] = self._span_id
            args["parent_span_id"] = ctx[1]
        tracer._append(
            Span(
                name=self._name,
                cat=self._cat,
                start=self._start - tracer._epoch,
                end=end - tracer._epoch,
                thread=thread.name,
                tid=thread.ident or 0,
                args=args,
            )
        )
        return False


class Tracer:
    """Records spans; exports Chrome trace JSON and ASCII gantts.

    ``max_spans`` bounds memory on long runs: past the cap new spans
    are counted in :attr:`dropped` instead of stored (keep-oldest, so
    a trace's beginning stays intact).
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._clock = time.perf_counter
        self._epoch = self._clock()
        self._lock = make_lock("obs.tracer")
        self._spans: list[Span] = []

    # ------------------------------------------------------- recording
    def span(self, name: str, cat: str = "", **args):
        """Context manager timing one interval on the calling thread."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanScope(self, name, cat, args)

    def add_complete(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "",
        thread: Optional[str] = None,
        tid: Optional[int] = None,
        **args,
    ) -> None:
        """Record a span from explicit epoch-relative timestamps.

        For work whose begin/end the calling thread only observes after
        the fact (e.g. the process backend's remote compute stage).
        """
        if not self.enabled:
            return
        current = threading.current_thread()
        self._append(
            Span(
                name=name,
                cat=cat,
                start=start,
                end=end,
                thread=thread if thread is not None else current.name,
                tid=tid if tid is not None else (current.ident or 0),
                args=args,
            )
        )

    def now(self) -> float:
        """Seconds since the tracer's epoch (for add_complete)."""
        return self._clock() - self._epoch

    def _append(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    # -------------------------------------------------------- querying
    def spans(self, cat: Optional[str] = None) -> list[Span]:
        """A snapshot copy of recorded spans (optionally one category)."""
        with self._lock:
            spans = list(self._spans)
        if cat is not None:
            spans = [s for s in spans if s.cat == cat]
        return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # --------------------------------------------------------- export
    def chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Uses complete ("X") events in microseconds plus thread_name
        metadata, the subset every trace viewer understands.
        """
        pid = os.getpid()
        events = []
        seen_tids: dict[int, str] = {}
        for span in self.spans():
            if span.tid not in seen_tids:
                seen_tids[span.tid] = span.thread
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat or "span",
                    "ph": "X",
                    "pid": pid,
                    "tid": span.tid,
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "args": span.args,
                }
            )
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
            for tid, name in seen_tids.items()
        ]
        return {"displayTimeUnit": "ms", "traceEvents": meta + events}

    def write_chrome_trace(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the span count."""
        trace = self.chrome_trace()
        with open(path, "w") as f:
            json.dump(trace, f, indent=None, separators=(",", ":"))
        return sum(1 for e in trace["traceEvents"] if e["ph"] == "X")

    def render_gantt(self, width: int = 72, cats: Optional[set] = None) -> str:
        """ASCII gantt of the recorded spans (same renderer as the
        simulator's schedules; see :mod:`repro.bench.gantt`)."""
        from ..bench.gantt import render_span_gantt

        return render_span_gantt(self.spans(), width=width, cats=cats)


#: Shared disabled tracer: instrumented code does ``tracer or NULL_TRACER``
#: so the un-traced hot path costs one attribute check per span.
NULL_TRACER = Tracer(enabled=False)


def pipeline_overlap(
    spans: Sequence[Span],
    read_cat: str = "read",
    compute_cat: str = "compute",
) -> Optional[tuple[Span, Span]]:
    """First (read, compute) span pair of *different* sub-tasks that
    overlap in wall time — the paper's pipelining claim, checked on a
    real trace.  Returns None when the schedule never overlapped.
    """
    reads = [s for s in spans if s.cat == read_cat]
    computes = [s for s in spans if s.cat == compute_cat]
    for r in reads:
        r_sub = r.args.get("subtask")
        for c in computes:
            if c.args.get("subtask") == r_sub:
                continue
            if r.start < c.end and c.start < r.end:
                return (r, c)
    return None
