"""Unified observability: metrics registry + span tracer + event log.

One import point for the engine's introspection layer:

* :class:`MetricsRegistry` — thread-safe named counters, gauges, and
  log-bucketed histograms (:class:`Histogram`, and the seconds-in /
  milliseconds-out :class:`LatencyHistogram` the server wire format
  uses).
* :class:`Tracer` — begin/end spans with thread attribution, exported
  as Chrome trace-event JSON (Perfetto / ``chrome://tracing``) or the
  ASCII gantt format of :mod:`repro.bench.gantt`; :func:`trace_context`
  binds a cross-process ``(trace_id, span_id)`` to a thread so spans
  link across the wire (protocol v2.1 request frames carry the ids).
* :class:`EventLog` — structured JSONL lifecycle events (flush,
  compaction retry/quarantine, stall boundaries, replication fencing)
  plus a slow-op log (:mod:`repro.obs.events`).
* :mod:`repro.obs.export` — Prometheus text / JSON exposition of a
  registry snapshot and merged multi-process Chrome traces.
* :class:`Observability` — the bundle, as one object a
  :class:`repro.db.DB` owns and every layer below records into.

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue, the
exposition formats, and trace/event schema notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import NULL_EVENTS, EventLog
from .export import (
    merge_chrome_traces,
    parse_prometheus,
    render_json,
    render_prometheus,
    write_merged_chrome_trace,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    merge_histogram_snapshots,
    merge_shard_snapshots,
)
from .tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    current_trace_context,
    new_span_id,
    new_trace_id,
    pipeline_overlap,
    trace_context,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "current_trace_context",
    "merge_chrome_traces",
    "merge_histogram_snapshots",
    "merge_shard_snapshots",
    "new_span_id",
    "new_trace_id",
    "parse_prometheus",
    "pipeline_overlap",
    "render_json",
    "render_prometheus",
    "trace_context",
    "write_merged_chrome_trace",
]


@dataclass
class Observability:
    """A DB's observability bundle: registry + tracer + event log.

    The default tracer is *disabled* and the default event log has no
    sink (metrics are always cheap enough to keep on; tracing allocates
    per span, events serialise JSON).  Pass
    ``Observability(tracer=Tracer(enabled=True))`` to capture a
    timeline — ``dbtool trace`` does exactly that — and
    ``Observability(events=EventLog("events.jsonl"))`` to stream
    lifecycle events.
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=lambda: Tracer(enabled=False))
    events: EventLog = field(default_factory=EventLog)
