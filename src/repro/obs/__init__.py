"""Unified observability: metrics registry + span tracer.

One import point for the engine's introspection layer:

* :class:`MetricsRegistry` — thread-safe named counters, gauges, and
  log-bucketed histograms (:class:`Histogram`, and the seconds-in /
  milliseconds-out :class:`LatencyHistogram` the server wire format
  uses).
* :class:`Tracer` — begin/end spans with thread attribution, exported
  as Chrome trace-event JSON (Perfetto / ``chrome://tracing``) or the
  ASCII gantt format of :mod:`repro.bench.gantt`.
* :class:`Observability` — the pair, as one object a :class:`repro.db.DB`
  owns and every layer below records into.

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and trace
format notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registry import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    merge_shard_snapshots,
)
from .tracer import NULL_TRACER, Span, Tracer, pipeline_overlap

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "merge_shard_snapshots",
    "pipeline_overlap",
]


@dataclass
class Observability:
    """A DB's observability bundle: one registry, one tracer.

    The default tracer is *disabled* (metrics are always cheap enough
    to keep on; tracing allocates per span).  Pass
    ``Observability(tracer=Tracer(enabled=True))`` to capture a
    timeline — ``dbtool trace`` does exactly that.
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=lambda: Tracer(enabled=False))
