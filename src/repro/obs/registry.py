"""Thread-safe named metrics: counters, gauges, log-bucketed histograms.

This generalises the server's former private ``LatencyHistogram`` into
an engine-wide facility (the role RocksDB's ``Statistics`` plays): any
layer — WAL, block cache, storage wrappers, compaction, the network
server — records into one :class:`MetricsRegistry` under dotted names
(``wal.bytes``, ``cache.hits``, ``io.mem.read.bytes``, …), and one
``snapshot()`` call returns a consistent, JSON-serialisable view of
everything.  See ``docs/OBSERVABILITY.md`` for the name catalogue.

Design notes
============

* **Histogram** buckets are logarithmic (default ~24 per decade from
  1 µs to 1000 s, matching the old server histogram): recording is
  O(1) and percentile estimation interpolates inside the winning
  bucket.  The bucket grid is configurable per histogram so the same
  type can hold latencies, byte sizes, or queue depths.
* **Thread safety**: every metric carries its own small lock (CPython's
  ``+=`` on an attribute is *not* atomic across threads), and the
  registry locks only around name→metric creation, so recording on two
  different metrics never contends.
* **Units** are the recorder's business; histograms store raw floats.
  :class:`LatencyHistogram` is the seconds-in/milliseconds-out variant
  the server wire format expects.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Optional

from ..analysis.locksan import make_lock
from ..analysis.racesan import shared_state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "merge_histogram_snapshots",
    "merge_shard_snapshots",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = make_lock("obs.counter")

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time float that may move both ways."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = make_lock("obs.gauge")

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


def _bucket_percentile(
    buckets: list, count: int, vmin: float, vmax: float, p: float
) -> float:
    """Percentile estimate from cumulative ``[le, cum]`` bucket pairs.

    The same interpolation :meth:`Histogram.percentile` performs on the
    live counts, but operating on a snapshot's bucket list — so merged
    snapshots (:func:`merge_histogram_snapshots`) can re-derive
    cluster-wide percentiles.
    """
    if count <= 0:
        return 0.0
    rank = p / 100.0 * count
    prev_le: Optional[float] = None
    prev_cum = 0
    for le, cum in buckets:
        if cum >= rank:
            lo = prev_le if prev_le is not None else vmin
            fraction = (rank - prev_cum) / (cum - prev_cum)
            est = lo + (le - lo) * fraction
            return min(max(est, vmin), vmax)
        prev_le, prev_cum = le, cum
    return vmax


class Histogram:
    """Log-bucketed histogram of positive floats with percentiles.

    ``lo``/``hi`` bound the bucket grid (values outside are clamped
    into the edge buckets; raw extremes are preserved in min/max), and
    ``buckets_per_decade`` sets resolution (~10 % wide at 24/decade).
    """

    __slots__ = (
        "counts", "count", "total", "vmin", "vmax",
        "_lo", "_bpd", "_nbuckets", "_lock",
    )

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 1e3,
        buckets_per_decade: int = 24,
    ) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self._lo = lo
        self._bpd = buckets_per_decade
        self._nbuckets = int(buckets_per_decade * math.log10(hi / lo)) + 2
        self.counts = [0] * self._nbuckets
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = 0.0
        self._lock = make_lock("obs.histogram")

    def _bucket(self, value: float) -> int:
        if value <= self._lo:
            return 0
        index = int(math.log10(value / self._lo) * self._bpd) + 1
        return min(index, self._nbuckets - 1)

    def _bucket_upper(self, index: int) -> float:
        if index <= 0:
            return self._lo
        return self._lo * 10 ** (index / self._bpd)

    def record(self, value: float) -> None:
        with self._lock:
            self.counts[self._bucket(value)] += 1
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` in [0, 100]."""
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = p / 100.0 * self.count
            seen = 0
            for index, n in enumerate(self.counts):
                if n == 0:
                    continue
                if seen + n >= rank:
                    lo = self._bucket_upper(index - 1)
                    hi = self._bucket_upper(index)
                    fraction = (rank - seen) / n
                    est = lo + (hi - lo) * fraction
                    return min(max(est, self.vmin), self.vmax)
                seen += n
            return self.vmax

    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Summary dict in the histogram's raw units.

        Besides the summary statistics, the snapshot carries the
        cumulative ``sum`` and the non-empty ``buckets`` as
        ``[upper_bound, cumulative_count]`` pairs, so a scraper can
        derive rates/averages between two snapshots and a Prometheus
        exposition can render ``_bucket``/``_count``/``_sum`` series
        (see :mod:`repro.obs.export`).  The empty shape stays
        ``{"count": 0}`` for backward compatibility.
        """
        if self.count == 0:
            return {"count": 0}
        with self._lock:
            counts = list(self.counts)
            count = self.count
            total = self.total
            vmin = self.vmin
            vmax = self.vmax
        buckets: list[list] = []
        cumulative = 0
        for index, n in enumerate(counts):
            if n == 0:
                continue
            cumulative += n
            buckets.append([self._bucket_upper(index), cumulative])
        snap = {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": vmin,
            "max": vmax,
        }
        for p in (50, 95, 99):
            snap[f"p{p}"] = _bucket_percentile(buckets, count, vmin, vmax, p)
        snap["buckets"] = buckets
        return snap


class LatencyHistogram(Histogram):
    """Seconds-in, milliseconds-out histogram (the STATS wire shape).

    Drop-in for the former ``repro.server.metrics.LatencyHistogram``:
    1 µs–1000 s grid, 24 buckets per decade, and a ``snapshot()`` whose
    keys carry the ``_ms`` suffix the wire format promises.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(lo=1e-6, hi=1e3, buckets_per_decade=24)

    # Back-compat aliases (latencies are recorded in seconds).
    @property
    def sum_s(self) -> float:
        return self.total

    @property
    def min_s(self) -> float:
        return self.vmin

    @property
    def max_s(self) -> float:
        return self.vmax

    def snapshot(self) -> dict:
        """Summary dict (latencies in milliseconds, for STATS/JSON)."""
        if self.count == 0:
            return {"count": 0}
        base = super().snapshot()
        return {
            "count": base["count"],
            "mean_ms": base["mean"] * 1e3,
            "min_ms": base["min"] * 1e3,
            "max_ms": base["max"] * 1e3,
            "p50_ms": base["p50"] * 1e3,
            "p95_ms": base["p95"] * 1e3,
            "p99_ms": base["p99"] * 1e3,
            "sum_ms": base["sum"] * 1e3,
            "buckets_ms": [[le * 1e3, cum] for le, cum in base["buckets"]],
        }


_KINDS = {"counter": Counter, "gauge": Gauge}


class MetricsRegistry:
    """Create-on-first-use map of named metrics.

    Names are dotted paths; asking for an existing name returns the
    same object, and asking for it as a different kind raises (one
    name, one meaning).
    """

    def __init__(self) -> None:
        # The per-metric locks are leaves (never held across another
        # acquire) but are still factory-made so the race sanitizer can
        # use them as happens-before edges.
        self._lock = make_lock("obs.registry")
        self._state = shared_state("obs.registry.metrics")
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        with self._lock:
            self._state.write()
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(**kwargs), Histogram
        )

    def latency_histogram(self, name: str) -> LatencyHistogram:
        return self._get_or_create(
            name, LatencyHistogram, LatencyHistogram
        )

    # ------------------------------------------------------- reporting
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._metrics.get(name)

    def items_with_prefix(self, prefix: str) -> Iterator[tuple[str, object]]:
        """(name, metric) pairs under a dotted prefix, sorted by name."""
        for name in self.names():
            if name.startswith(prefix):
                yield name, self._metrics[name]

    def snapshot(self) -> dict:
        """JSON-serialisable dict: counters, gauges, histograms."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.snapshot()
        return out

    def render(self) -> str:
        """Human-readable one-metric-per-line summary."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"{name:<32} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name:<32} {value:g}")
        for name, h in snap["histograms"].items():
            if not h.get("count"):
                lines.append(f"{name:<32} (empty)")
                continue
            keys = [k for k in ("p50", "p99", "p50_ms", "p99_ms") if k in h]
            tail = " ".join(f"{k}={h[k]:.4g}" for k in keys)
            lines.append(f"{name:<32} n={h['count']} mean="
                         f"{h.get('mean', h.get('mean_ms', 0.0)):.4g} {tail}")
        return "\n".join(lines) if lines else "(no metrics)"


def merge_histogram_snapshots(snapshots: list[dict]) -> dict:
    """Merge histogram *snapshot* dicts into one combined snapshot.

    Counts, sums, and buckets add; min/max combine; percentiles are
    re-estimated from the merged cumulative buckets — so a cluster-wide
    p99 is derived from the full distribution, not averaged from
    per-shard percentiles (which would be meaningless).  Handles both
    the raw-unit shape (``sum``/``buckets``) and the latency wire shape
    (``sum_ms``/``buckets_ms``); empty snapshots merge to
    ``{"count": 0}``.
    """
    snaps = [s for s in snapshots if s and s.get("count")]
    if not snaps:
        return {"count": 0}
    suffix = "_ms" if any("buckets_ms" in s for s in snaps) else ""
    bucket_key = "buckets" + suffix
    count = 0
    total = 0.0
    vmin = math.inf
    vmax = 0.0
    incremental: dict[float, int] = {}
    for s in snaps:
        count += s["count"]
        # Pre-`sum` snapshots (older producers) fall back to mean*count.
        total += s.get(
            "sum" + suffix, s.get("mean" + suffix, 0.0) * s["count"]
        )
        vmin = min(vmin, s.get("min" + suffix, math.inf))
        vmax = max(vmax, s.get("max" + suffix, 0.0))
        prev = 0
        for le, cum in s.get(bucket_key, []):
            incremental[le] = incremental.get(le, 0) + (cum - prev)
            prev = cum
    buckets: list[list] = []
    cumulative = 0
    for le in sorted(incremental):
        cumulative += incremental[le]
        buckets.append([le, cumulative])
    if not math.isfinite(vmin):
        vmin = 0.0
    merged = {
        "count": count,
        "mean" + suffix: total / count,
        "min" + suffix: vmin,
        "max" + suffix: vmax,
    }
    for p in (50, 95, 99):
        merged[f"p{p}" + suffix] = _bucket_percentile(
            buckets, count, vmin, vmax, p
        )
    merged["sum" + suffix] = total
    merged[bucket_key] = buckets
    return merged


def merge_shard_snapshots(
    cluster_snapshot: dict,
    shard_snapshots: list[dict],
    prefix: str = "cluster.shard",
) -> dict:
    """Merge per-shard registry snapshots into one shard-dimensioned view.

    Every per-shard metric appears as ``<prefix><i>.<name>`` (e.g.
    ``cluster.shard0.flush.bytes``); counters and gauges additionally
    roll up as sums under their bare name.  Histograms roll up via
    :func:`merge_histogram_snapshots` — bucket counts add and
    percentiles are re-estimated from the merged buckets (never
    averaged).  ``cluster_snapshot`` (the cluster's own registry, e.g.
    ``cluster.pool.*``) rides along unprefixed and wins any name
    collision with a rollup.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    histogram_groups: dict[str, list[dict]] = {}
    for i, snap in enumerate(shard_snapshots):
        for kind in ("counters", "gauges"):
            for name, value in snap.get(kind, {}).items():
                out[kind][f"{prefix}{i}.{name}"] = value
                out[kind][name] = out[kind].get(name, 0) + value
        for name, value in snap.get("histograms", {}).items():
            out["histograms"][f"{prefix}{i}.{name}"] = value
            histogram_groups.setdefault(name, []).append(value)
    for name, group in histogram_groups.items():
        out["histograms"][name] = merge_histogram_snapshots(group)
    for kind in ("counters", "gauges", "histograms"):
        out[kind].update(cluster_snapshot.get(kind, {}))
        out[kind] = dict(sorted(out[kind].items()))
    return out
