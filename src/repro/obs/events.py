"""Structured JSONL lifecycle event log + slow-op log.

Metrics say *how much*, traces say *when*; the event log says *what
happened* — one JSON object per line, machine-greppable, covering the
engine's discrete lifecycle transitions:

==========================  =============================================
event                       emitted by
==========================  =============================================
``flush``                   DB memtable flush (bytes, seconds, L0 depth)
``stall.enter`` / ``.exit`` DB write-stall boundary (L0 backlog)
``compaction.start``        background compaction picked inputs
``compaction.end``          compaction finished (outputs, seconds)
``compaction.retry``        transient I/O error, backing off
``compaction.quarantine``   corrupt input sidelined
``fence``                   replication epoch bumped (failover fencing)
``repl.subscribe``          hub accepted a follower (wal/snapshot mode)
``repl.goodbye``            hub said goodbye on shutdown
``follower.resubscribe``    follower lost the stream and is retrying
``follower.snapshot``       follower installed a full SST snapshot
``slow_op``                 server op exceeded the slow-op threshold
``failover.detected``       coordinator declared the primary dead
``failover.elected``        coordinator picked the most-caught-up
                            follower to promote
``failover.promoted``       a node became primary (coordinator side and
                            server side on ``PROMOTE``)
``net.fault_injected``      chaos proxy injected a network fault
                            (refuse/cut/blackhole/latency)
==========================  =============================================

Every record carries ``ts`` (epoch seconds), ``event``, and ``thread``;
the rest is event-specific.  A disabled log (no sink) is a no-op whose
``emit`` costs one attribute check — instrumentation stays in place on
hot paths, mirroring ``NULL_TRACER``.

The sink is either a path (append mode, line-buffered by explicit
flush), a file-like object with ``write``, or a callable taking the
record dict (handy in tests).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Optional, Union

from ..analysis.locksan import make_lock
from ..analysis.racesan import shared_state

__all__ = ["EventLog", "NULL_EVENTS"]


class EventLog:
    """Thread-safe structured event log writing JSON lines.

    ``slow_op_threshold_s`` arms :meth:`slow_op`: ops at or above the
    threshold are logged, faster ones skipped.  ``None`` (default)
    disables the slow-op log even when lifecycle events are on.
    """

    def __init__(
        self,
        sink: Union[None, str, Callable] = None,
        *,
        slow_op_threshold_s: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._file = None
        self._sink: Optional[Callable[[dict], None]] = None
        if isinstance(sink, str):
            self._file = open(sink, "a")  # noqa: SIM115 - closed in close()
            self._sink = self._write_line
        elif callable(sink):
            self._sink = sink
        elif sink is not None:  # file-like
            self._file = sink
            self._sink = self._write_line
        self.slow_op_threshold_s = slow_op_threshold_s
        self._clock = clock
        self._lock = make_lock("obs.events")
        self._state = shared_state("obs.events.sink")
        self.emitted = 0

    # ``enabled`` is the hot-path guard: instrumented code does
    # ``if events.enabled: events.emit(...)`` so building the kwargs
    # dict is skipped entirely when nothing is listening.
    @property
    def enabled(self) -> bool:
        return self._sink is not None

    def _write_line(self, record: dict) -> None:
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def emit(self, event: str, **fields) -> None:
        """Append one event record; no-op when no sink is configured."""
        sink = self._sink
        if sink is None:
            return
        record = {
            "ts": round(self._clock(), 6),
            "event": event,
            "thread": threading.current_thread().name,
        }
        record.update(fields)
        with self._lock:
            self._state.write()
            self.emitted += 1
            sink(record)

    def slow_op(self, op: str, seconds: float, **fields) -> None:
        """Log an operation that exceeded the slow-op threshold."""
        threshold = self.slow_op_threshold_s
        if threshold is None or seconds < threshold or self._sink is None:
            return
        self.emit(
            "slow_op",
            op=op,
            seconds=round(seconds, 6),
            threshold_s=threshold,
            **fields,
        )

    def close(self) -> None:
        with self._lock:
            self._state.write()
            if self._file is not None:
                try:
                    self._file.close()
                finally:
                    self._file = None
                    self._sink = None


#: Shared disabled log: instrumented code does ``events or NULL_EVENTS``
#: so the un-logged path costs one attribute check per site.
NULL_EVENTS = EventLog()
