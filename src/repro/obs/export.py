"""Metrics exposition and multi-process trace export.

This is the boundary where `repro.obs` stops being in-process state and
becomes telemetry another system can consume:

* :func:`render_prometheus` — a :meth:`MetricsRegistry.snapshot` dict
  as Prometheus text exposition format (``# TYPE`` lines, ``_total``
  counters, full ``_bucket``/``_count``/``_sum`` histogram series from
  the snapshot's cumulative buckets).  Shard-dimensioned names
  (``cluster.shard3.wal.bytes``) become a ``shard="3"`` label so a
  scraper can aggregate across shards natively.
* :func:`parse_prometheus` — a small strict parser for the same format,
  used by tests/CI to prove the endpoint's output actually parses, and
  by ``dbtool scrape --check``.
* :func:`render_json` — the JSON flavour of the same exposition.
* :func:`merge_chrome_traces` — stitch per-process Chrome traces
  (client, primary, follower) into one file with per-process tracks;
  spans stamped with the same ``trace_id`` (see
  :func:`repro.obs.tracer.trace_context`) line up across processes.

Latency histograms snapshot in milliseconds (``*_ms`` keys); the
Prometheus rendering converts them to base-unit seconds and suffixes
the metric name ``_seconds``, per Prometheus naming conventions.
"""

from __future__ import annotations

import json
import math
import re
from typing import Iterable, Optional

__all__ = [
    "merge_chrome_traces",
    "parse_prometheus",
    "prometheus_metric_name",
    "render_json",
    "render_prometheus",
    "write_merged_chrome_trace",
]

EXPOSITION_VERSION = 1

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SHARD = re.compile(r"^cluster\.shard(\d+)\.(.+)$")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def prometheus_metric_name(name: str, prefix: str = "repro") -> str:
    """A dotted registry name as a legal Prometheus metric name."""
    sanitized = _NAME_OK.sub("_", name.replace(".", "_"))
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _split_shard(name: str) -> tuple[str, Optional[str]]:
    """``cluster.shard<i>.<rest>`` -> (``<rest>``, ``"<i>"``)."""
    m = _SHARD.match(name)
    if m is None:
        return name, None
    return m.group(2), m.group(1)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_str(shard: Optional[str], extra: Optional[dict] = None) -> str:
    parts = []
    if shard is not None:
        parts.append(f'shard="{shard}"')
    for key, value in (extra or {}).items():
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    ``snapshot`` is the ``{"counters": .., "gauges": .., "histograms":
    ..}`` shape produced by :meth:`MetricsRegistry.snapshot` /
    :func:`merge_shard_snapshots`.  One ``# TYPE`` line per metric
    family; families are emitted sorted so the output is deterministic
    and diffable.
    """
    # family name -> (type, [(labels, value) ...]) for scalar families,
    # or (type, [histogram sample lines]) for histogram families.
    families: dict[str, tuple[str, list[str]]] = {}

    def add(family: str, ftype: str, line: str) -> None:
        entry = families.setdefault(family, (ftype, []))
        if entry[0] != ftype:
            raise ValueError(
                f"metric family {family!r} rendered as both "
                f"{entry[0]} and {ftype}"
            )
        entry[1].append(line)

    for name, value in snapshot.get("counters", {}).items():
        bare, shard = _split_shard(name)
        family = prometheus_metric_name(bare, prefix) + "_total"
        add(family, "counter",
            f"{family}{_labels_str(shard)} {_fmt(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        bare, shard = _split_shard(name)
        family = prometheus_metric_name(bare, prefix)
        add(family, "gauge",
            f"{family}{_labels_str(shard)} {_fmt(value)}")

    for name, hist in snapshot.get("histograms", {}).items():
        bare, shard = _split_shard(name)
        milliseconds = "buckets_ms" in hist or "sum_ms" in hist
        family = prometheus_metric_name(bare, prefix)
        if milliseconds and not family.endswith("_seconds"):
            family += "_seconds"
        scale = 1e-3 if milliseconds else 1.0
        count = hist.get("count", 0)
        total = hist.get("sum_ms" if milliseconds else "sum", 0.0) * scale
        buckets = hist.get("buckets_ms" if milliseconds else "buckets", [])
        for le, cum in buckets:
            labels = _labels_str(shard, {"le": _fmt(le * scale)})
            add(family, "histogram", f"{family}_bucket{labels} {cum}")
        labels = _labels_str(shard, {"le": "+Inf"})
        add(family, "histogram", f"{family}_bucket{labels} {count}")
        add(family, "histogram",
            f"{family}_count{_labels_str(shard)} {count}")
        add(family, "histogram",
            f"{family}_sum{_labels_str(shard)} {_fmt(total)}")

    lines = []
    for family in sorted(families):
        ftype, samples = families[family]
        lines.append(f"# TYPE {family} {ftype}")
        lines.extend(samples)
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition into ``{name: [(labels, value)]}``.

    Strict about what this repo emits (and the common subset every
    scraper accepts): ``# TYPE``/``# HELP`` comment lines, then
    ``name{labels} value`` samples.  Raises ``ValueError`` on any
    malformed line — this is the validator CI runs against the live
    endpoint.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {lineno}: bad TYPE line: {raw!r}")
                if parts[2] in types:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                    )
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_LINE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample: {raw!r}")
        labels: dict = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                lm = _LABEL.match(pair.strip())
                if lm is None:
                    raise ValueError(
                        f"line {lineno}: bad label pair {pair!r}"
                    )
                labels[lm.group("key")] = lm.group("value")
        text_value = m.group("value")
        try:
            value = float(text_value)
        except ValueError:
            if text_value == "+Inf":
                value = math.inf
            elif text_value == "-Inf":
                value = -math.inf
            elif text_value == "NaN":
                value = math.nan
            else:
                raise ValueError(
                    f"line {lineno}: bad sample value {text_value!r}"
                ) from None
        samples.setdefault(m.group("name"), []).append((labels, value))
    return samples


def render_json(snapshot: dict, extra: Optional[dict] = None) -> str:
    """The JSON flavour of the exposition: versioned envelope + snapshot."""
    doc = {"version": EXPOSITION_VERSION, "metrics": snapshot}
    if extra:
        doc.update(extra)
    return json.dumps(doc, sort_keys=True)


# ------------------------------------------------------- trace merging

def merge_chrome_traces(traces: Iterable[tuple[str, dict]]) -> dict:
    """Merge per-process Chrome traces into one multi-process trace.

    ``traces`` is ``[(label, chrome_trace_dict), ...]`` — e.g.
    ``[("client", ...), ("primary", ...), ("follower-1", ...)]``.  Each
    input gets its own pid track (1..n) with a ``process_name``
    metadata record, so Perfetto shows one named lane per process.
    Event timestamps are kept as recorded: each process's tracer epoch
    is its own zero, which is what matters for *within*-request
    causality (spans sharing a ``trace_id`` arg link logically, not by
    wall clock).
    """
    events: list = []
    for pid, (label, trace) in enumerate(traces, start=1):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
        for event in trace.get("traceEvents", []):
            merged = dict(event)
            merged["pid"] = pid
            events.append(merged)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_merged_chrome_trace(
    path: str, traces: Iterable[tuple[str, dict]]
) -> int:
    """Write a merged trace to ``path``; returns the "X" event count."""
    merged = merge_chrome_traces(traces)
    with open(path, "w") as f:
        json.dump(merged, f, indent=None, separators=(",", ":"))
    return sum(1 for e in merged["traceEvents"] if e.get("ph") == "X")
