"""Classic leveling (the seed engine's only policy, bit-compatible).

LevelDB policy, simplified but faithful where the paper depends on it:

* L0 compacts into L1 when it accumulates ``l0_compaction_trigger``
  files (all overlapping L0 files join the compaction).
* Level i >= 1 compacts into i+1 when its byte size exceeds the
  exponential threshold; one input file is chosen round-robin by key
  (the ``compact_pointer``) so compactions sweep the key space, plus
  every i+1 file whose range overlaps.

The picked :class:`CompactionTask` is exactly the paper's unit of work:
"the key-value pairs in a specific key range from the corresponding
SSTables in C_i and C_{i+1} are merged into multiple size-limited
SSTables in C_{i+1}".

Every level holds exactly one sorted run (run id 0), so manifests
written by this policy are byte-identical with pre-policy stores.
"""

from __future__ import annotations

from typing import Optional

from ..lsm.options import Options
from ..lsm.version import Version
from .policy import CompactionPolicy, CompactionTask, register_policy

__all__ = ["LeveledPolicy"]


@register_policy
class LeveledPolicy(CompactionPolicy):
    """One sorted run per level; merge-with-overlap on byte pressure."""

    name = "leveled"

    def __init__(self, options: Options) -> None:
        super().__init__(options)
        # Per-level key cursor for round-robin file selection.
        self.compact_pointer: dict[int, bytes] = {}

    def compaction_score(self, version: Version) -> tuple[float, int]:
        best_score = version.num_files(0) / self.options.l0_compaction_trigger
        best_level = 0
        for level in range(1, self.options.num_levels - 1):
            score = version.level_bytes(level) / self.options.max_bytes_for_level(
                level
            )
            if score > best_score:
                best_score, best_level = score, level
        return best_score, best_level

    def pick(self, version: Version) -> Optional[CompactionTask]:
        score, level = self.compaction_score(version)
        if score < 1.0:
            return None
        if level == 0:
            return self._pick_l0(version)
        return self._pick_level(version, level)

    def _pick_l0(self, version: Version) -> Optional[CompactionTask]:
        l0 = list(version.files[0])
        if not l0:
            return None
        # Start from the oldest L0 file and pull in every L0 file whose
        # range overlaps transitively (they must compact together to
        # preserve newest-wins ordering).
        chosen = [l0[0]]
        changed = True
        while changed:
            changed = False
            lo = min(f.smallest[:-8] for f in chosen)
            hi = max(f.largest[:-8] for f in chosen)
            for meta in l0:
                if meta not in chosen and meta.overlaps(lo, hi):
                    chosen.append(meta)
                    changed = True
        chosen.sort(key=lambda m: m.number)
        lo = min(f.smallest[:-8] for f in chosen)
        hi = max(f.largest[:-8] for f in chosen)
        lower = version.overlapping_files(1, lo, hi)
        return CompactionTask(0, chosen, lower)

    def _pick_level(self, version: Version, level: int) -> Optional[CompactionTask]:
        files = version.files[level]
        if not files:
            return None
        pointer = self.compact_pointer.get(level)
        pick = None
        if pointer is not None:
            for meta in files:
                if meta.largest[:-8] > pointer:
                    pick = meta
                    break
        if pick is None:
            pick = files[0]  # wrap around
        self.compact_pointer[level] = pick.largest[:-8]
        lower = version.overlapping_files(
            level + 1, pick.smallest[:-8], pick.largest[:-8]
        )
        return CompactionTask(level, [pick], lower)

    def pick_for_range(
        self,
        version: Version,
        level: int,
        smallest_user: Optional[bytes],
        largest_user: Optional[bytes],
    ) -> Optional[CompactionTask]:
        if level >= self.options.num_levels - 1:
            return None
        files = version.overlapping_files(level, smallest_user, largest_user)
        if not files:
            return None
        if level == 0:
            return self._pick_l0(version)
        pick = files[0]
        lower = version.overlapping_files(
            level + 1, pick.smallest[:-8], pick.largest[:-8]
        )
        return CompactionTask(level, [pick], lower)
