"""Size-tiered compaction: stacked runs, whole-tier merges.

Every memtable flush is one sorted run at L0; when a level accumulates
``runs`` sorted runs, *all* of them merge into a single fresh run one
level down (no overlapping-file rewrite at the target — that is the
whole point: each key is rewritten once per level, so write
amplification is O(depth) instead of O(depth × fanout)).  The last
level merges its runs in place once it hits the trigger, bounding
space amplification.

This is the "tiering" corner of Sarkar et al.'s design space: trigger
= run count, layout = multiple runs per level, granularity = whole
level, data movement = none at the target.
"""

from __future__ import annotations

from typing import Optional

from ..lsm.options import Options
from ..lsm.version import Version
from .policy import CompactionPolicy, CompactionTask, register_policy

__all__ = ["TieredPolicy"]


@register_policy
class TieredPolicy(CompactionPolicy):
    """Merge a whole level into one fresh run below at ``runs`` runs."""

    name = "tiered"

    def __init__(self, options: Options, runs: Optional[int] = None) -> None:
        super().__init__(options)
        self.runs_per_level = (
            runs if runs is not None else options.l0_compaction_trigger
        )
        if self.runs_per_level < 2:
            raise ValueError("tiered policy needs runs >= 2")
        if self.runs_per_level > options.l0_stop_writes_trigger:
            raise ValueError(
                f"tiered runs trigger ({self.runs_per_level}) above "
                f"l0_stop_writes_trigger ({options.l0_stop_writes_trigger}): "
                "writes would stall before a merge is ever due"
            )

    @classmethod
    def from_params(
        cls, options: Options, params: dict[str, str]
    ) -> "TieredPolicy":
        params = dict(params)
        runs = params.pop("runs", None)
        if params:
            raise ValueError(
                f"policy '{cls.name}' got unknown parameters "
                f"{sorted(params)}; supported: runs"
            )
        return cls(options, runs=int(runs) if runs is not None else None)

    def spec(self) -> str:
        return f"{self.name}:runs={self.runs_per_level}"

    # ------------------------------------------------------------ knobs
    def compaction_score(self, version: Version) -> tuple[float, int]:
        best_score = version.num_runs(0) / self.runs_per_level
        best_level = 0
        for level in range(1, self.options.num_levels):
            score = version.num_runs(level) / self.runs_per_level
            if score > best_score:
                best_score, best_level = score, level
        return best_score, best_level

    def pick(self, version: Version) -> Optional[CompactionTask]:
        score, level = self.compaction_score(version)
        if score < 1.0:
            return None
        return self._merge_level(version, level)

    def _merge_level(
        self, version: Version, level: int
    ) -> Optional[CompactionTask]:
        """Merge every run at ``level`` into one run.

        Intermediate levels push the merged run one level down as a
        fresh run id (no target-level inputs); the last level collapses
        its runs in place into run 0.
        """
        files = list(version.files[level])
        if not files:
            return None
        if level >= self.options.num_levels - 1:
            if version.num_runs(level) <= 1:
                return None
            return CompactionTask(
                level, files, [], output_level=level, output_run=0
            )
        out_run = version.max_run_id(level + 1) + 1
        return CompactionTask(
            level, files, [], output_level=level + 1, output_run=out_run
        )

    def pick_for_range(
        self,
        version: Version,
        level: int,
        smallest_user: Optional[bytes],
        largest_user: Optional[bytes],
    ) -> Optional[CompactionTask]:
        # Runs merge wholesale: any overlap with the range pulls the
        # whole level (a superset of what was asked — correct, just
        # more thorough).
        if not version.overlapping_files(level, smallest_user, largest_user):
            return None
        return self._merge_level(version, level)
