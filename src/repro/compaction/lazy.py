"""Lazy leveling: tiering above, leveling on the last level.

Sarkar et al.'s hybrid: intermediate levels stack runs and merge them
wholesale (tiered — cheap writes while data is still hot and will be
rewritten anyway), but the last level keeps exactly one sorted run
(leveled — bounded space amplification and fast reads where most of
the data lives).  Merges out of the second-to-last level are classic
leveled merges: they rewrite the overlapping slice of the last level's
single run.
"""

from __future__ import annotations

from typing import Optional

from ..lsm.options import Options
from ..lsm.version import Version
from .policy import CompactionPolicy, CompactionTask, register_policy
from .tiered import TieredPolicy

__all__ = ["LazyLeveledPolicy"]


@register_policy
class LazyLeveledPolicy(CompactionPolicy):
    """Tiered runs on levels 0..N-2, one leveled run on level N-1."""

    name = "lazy-leveled"

    def __init__(self, options: Options, runs: Optional[int] = None) -> None:
        super().__init__(options)
        # Reuse tiered's trigger arithmetic/validation for the upper
        # levels; the sink level below is pure leveling.
        self._tiers = TieredPolicy(options, runs=runs)
        self.runs_per_level = self._tiers.runs_per_level

    @classmethod
    def from_params(
        cls, options: Options, params: dict[str, str]
    ) -> "LazyLeveledPolicy":
        params = dict(params)
        runs = params.pop("runs", None)
        if params:
            raise ValueError(
                f"policy '{cls.name}' got unknown parameters "
                f"{sorted(params)}; supported: runs"
            )
        return cls(options, runs=int(runs) if runs is not None else None)

    def spec(self) -> str:
        return f"{self.name}:runs={self.runs_per_level}"

    # ------------------------------------------------------------ knobs
    def compaction_score(self, version: Version) -> tuple[float, int]:
        # Run-count pressure on every level but the leveled sink; the
        # sink has nothing deeper to merge into.
        best_score = version.num_runs(0) / self.runs_per_level
        best_level = 0
        for level in range(1, self.options.num_levels - 1):
            score = version.num_runs(level) / self.runs_per_level
            if score > best_score:
                best_score, best_level = score, level
        return best_score, best_level

    def pick(self, version: Version) -> Optional[CompactionTask]:
        score, level = self.compaction_score(version)
        if score < 1.0:
            return None
        return self._merge_level(version, level)

    def _merge_level(
        self, version: Version, level: int
    ) -> Optional[CompactionTask]:
        files = list(version.files[level])
        if not files:
            return None
        last = self.options.num_levels - 1
        if level >= last:
            return None  # the sink is leveled; nothing below it
        if level == last - 1:
            # Leveled merge into the sink: rewrite the overlapping
            # slice of its single run, outputs land as run 0.
            lo = min(f.smallest[:-8] for f in files)
            hi = max(f.largest[:-8] for f in files)
            lower = version.overlapping_files(last, lo, hi)
            return CompactionTask(
                level, files, lower, output_level=last, output_run=0
            )
        out_run = version.max_run_id(level + 1) + 1
        return CompactionTask(
            level, files, [], output_level=level + 1, output_run=out_run
        )

    def pick_for_range(
        self,
        version: Version,
        level: int,
        smallest_user: Optional[bytes],
        largest_user: Optional[bytes],
    ) -> Optional[CompactionTask]:
        if not version.overlapping_files(level, smallest_user, largest_user):
            return None
        return self._merge_level(version, level)
