"""Pluggable compaction policies over the pipelined S1–S7 substrate.

See docs/COMPACTION.md for the policy model and spec-string grammar.

>>> from repro.compaction import make_policy
>>> from repro.lsm import Options
>>> make_policy("tiered:runs=4", Options()).spec()
'tiered:runs=4'
"""

from .lazy import LazyLeveledPolicy
from .leveled import LeveledPolicy
from .policy import (
    DEFAULT_POLICY_SPEC,
    CompactionPolicy,
    CompactionTask,
    PolicyMismatchError,
    available_policies,
    canonical_spec,
    make_policy,
    parse_spec,
    register_policy,
)
from .tiered import TieredPolicy

__all__ = [
    "DEFAULT_POLICY_SPEC",
    "CompactionPolicy",
    "CompactionTask",
    "LazyLeveledPolicy",
    "LeveledPolicy",
    "PolicyMismatchError",
    "TieredPolicy",
    "available_policies",
    "canonical_spec",
    "make_policy",
    "parse_spec",
    "register_policy",
]
