"""The compaction-policy interface and registry.

Sarkar et al. ("Constructing and Analyzing the LSM Compaction Design
Space", PAPERS.md) decompose compaction into four orthogonal knobs:
*trigger* (when), *data layout* (leveled / tiered / hybrids),
*granularity* (how much), and *data movement* (which files).  A
:class:`CompactionPolicy` owns all four decisions; the pipelined S1–S7
merge machinery underneath (the paper's contribution) is policy-blind
— it just merges whatever file sets the policy picks.

Policies are named by *spec strings*::

    leveled                    classic LevelDB leveling (the default)
    tiered:runs=4              size-tiered, merge a level at 4 runs
    lazy-leveled:runs=4        tiering above, leveling on the last level

The canonical spec is persisted in the store's MANIFEST, so a store
reopens under the policy it was created with; asking for a different
one raises :class:`PolicyMismatchError` instead of silently mixing
layouts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Optional

from ..lsm.options import Options
from ..lsm.version import FileMetaData, Version

__all__ = [
    "CompactionTask",
    "CompactionPolicy",
    "PolicyMismatchError",
    "register_policy",
    "available_policies",
    "parse_spec",
    "make_policy",
    "canonical_spec",
    "DEFAULT_POLICY_SPEC",
]

#: Spec adopted by fresh stores when the caller does not choose one.
DEFAULT_POLICY_SPEC = "leveled"


class PolicyMismatchError(ValueError):
    """Requested policy disagrees with the one persisted in the manifest."""


@dataclass
class CompactionTask:
    """Inputs and placement of one compaction.

    ``inputs_upper`` come from ``level``; ``inputs_lower`` from
    ``output_level`` (empty for whole-tier pushes).  ``output_level``
    defaults to ``level + 1`` (the classic shape); tiered policies use
    ``output_level == level`` for last-level in-place run merges.
    ``output_run`` is the sorted-run id the outputs are installed
    under (0 for leveled targets).
    """

    level: int
    inputs_upper: list[FileMetaData]
    inputs_lower: list[FileMetaData]
    output_level: int = -1
    output_run: int = 0

    def __post_init__(self) -> None:
        if self.output_level < 0:
            self.output_level = self.level + 1

    def all_inputs(self) -> list[FileMetaData]:
        return self.inputs_upper + self.inputs_lower

    def input_bytes(self) -> int:
        return sum(f.file_size for f in self.all_inputs())

    def is_trivial_move(self) -> bool:
        """Single upper file, nothing overlapping below, and an actual
        level change: just relink."""
        return (
            len(self.inputs_upper) == 1
            and not self.inputs_lower
            and self.output_level != self.level
        )

    def key_range_user(self) -> tuple[bytes, bytes]:
        """User-key span covered by all inputs."""
        smallest = min(f.smallest[:-8] for f in self.all_inputs())
        largest = max(f.largest[:-8] for f in self.all_inputs())
        return smallest, largest


class CompactionPolicy(ABC):
    """Decides when and what to compact, and where outputs land.

    Subclasses register themselves with :func:`register_policy` under
    a class-level ``name``.  One instance is owned per DB and only
    ever called under the DB mutex, so policies may keep mutable
    cursor state (e.g. leveling's round-robin ``compact_pointer``)
    without their own locks.
    """

    name: ClassVar[str] = ""

    def __init__(self, options: Options) -> None:
        self.options = options

    # -- construction / identity -------------------------------------
    @classmethod
    def from_params(
        cls, options: Options, params: dict[str, str]
    ) -> "CompactionPolicy":
        """Build from parsed spec params; unknown keys must raise."""
        if params:
            raise ValueError(
                f"policy '{cls.name}' takes no parameters, "
                f"got {sorted(params)}"
            )
        return cls(options)

    def spec(self) -> str:
        """Canonical spec string (what the manifest persists)."""
        return self.name

    # -- the four knobs ------------------------------------------------
    @abstractmethod
    def compaction_score(self, version: Version) -> tuple[float, int]:
        """(score, level) of the most pressing compaction; score >= 1
        means a compaction is due."""

    @abstractmethod
    def pick(self, version: Version) -> Optional[CompactionTask]:
        """The next compaction task, or None when nothing is due."""

    @abstractmethod
    def pick_for_range(
        self,
        version: Version,
        level: int,
        smallest_user: Optional[bytes],
        largest_user: Optional[bytes],
    ) -> Optional[CompactionTask]:
        """A task pushing ``level`` data overlapping the range down one
        level (``compact_range`` driver); None when nothing to do."""

    def needs_compaction(self, version: Version) -> bool:
        return self.compaction_score(version)[0] >= 1.0

    def write_stall(self, version: Version) -> bool:
        """Should foreground writes pause?

        Generalized from LevelDB's "L0 file count" to *sorted runs at
        L0*: each L0 file is one run, so for leveled stores this is
        exactly the classic ``l0_stop_writes_trigger`` file-count
        stall, while tiered stores stall on the same backlog measure
        that drives their merges (see docs/COMPACTION.md).
        """
        return version.num_runs(0) >= self.options.l0_stop_writes_trigger


# ---------------------------------------------------------------- registry
_REGISTRY: dict[str, type[CompactionPolicy]] = {}


def register_policy(cls: type[CompactionPolicy]) -> type[CompactionPolicy]:
    """Class decorator: make ``cls`` constructible from spec strings."""
    if not cls.name:
        raise ValueError("policy class needs a non-empty 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_builtin_policies() -> None:
    # Importing the modules runs their @register_policy decorators.
    from . import lazy, leveled, tiered  # noqa: F401


def available_policies() -> list[str]:
    _ensure_builtin_policies()
    return sorted(_REGISTRY)


def parse_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split ``"name:key=val,key=val"`` into (name, params)."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty compaction-policy spec: {spec!r}")
    name, _, tail = spec.strip().partition(":")
    params: dict[str, str] = {}
    if tail:
        for part in tail.split(","):
            key, eq, value = part.partition("=")
            if not eq or not key or not value:
                raise ValueError(
                    f"malformed policy parameter {part!r} in spec {spec!r} "
                    "(want key=value)"
                )
            params[key.strip()] = value.strip()
    return name, params


def make_policy(spec: Optional[str], options: Options) -> CompactionPolicy:
    """Instantiate the policy a spec string names.

    ``None`` means the default (:data:`DEFAULT_POLICY_SPEC`).
    """
    _ensure_builtin_policies()
    name, params = parse_spec(spec if spec is not None else DEFAULT_POLICY_SPEC)
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown compaction policy {name!r}; "
            f"available: {', '.join(available_policies())}"
        )
    return cls.from_params(options, params)


def canonical_spec(spec: Optional[str], options: Options) -> str:
    """The canonical form of ``spec`` under ``options`` (defaults
    resolved), as persisted in the manifest and compared on reopen."""
    return make_policy(spec, options).spec()
