"""Benchmark harness: profiling, virtual-clock runs, experiment drivers."""

from .gantt import render_gantt
from .latency import LatencyClock, LatencyResult, run_latency_workload
from .observer import VirtualClock
from .profiling import breakdown3, profile_steps_model, profile_steps_real
from .report import format_fractions, format_table, render_series
from .runner import SystemRunResult, run_insert_workload, scaled_options

__all__ = [
    "SystemRunResult",
    "VirtualClock",
    "breakdown3",
    "format_fractions",
    "format_table",
    "profile_steps_model",
    "profile_steps_real",
    "render_gantt",
    "LatencyClock",
    "LatencyResult",
    "run_latency_workload",
    "render_series",
    "run_insert_workload",
    "scaled_options",
]
