"""Benchmark harness: profiling, virtual-clock runs, experiment drivers."""

from .gantt import render_gantt
from .latency import LatencyClock, LatencyResult, run_latency_workload
from .observer import VirtualClock
from .profiling import breakdown3, profile_steps_model, profile_steps_real
from .report import format_fractions, format_table, render_series
from .runner import SystemRunResult, run_insert_workload, scaled_options

__all__ = [
    "NetBenchResult",
    "SystemRunResult",
    "run_net_benchmark",
    "VirtualClock",
    "breakdown3",
    "format_fractions",
    "format_table",
    "profile_steps_model",
    "profile_steps_real",
    "render_gantt",
    "LatencyClock",
    "LatencyResult",
    "run_latency_workload",
    "render_series",
    "run_insert_workload",
    "scaled_options",
]


def __getattr__(name):
    # Lazy: netbench pulls in the server stack, and an eager import
    # would make ``python -m repro.bench.netbench`` double-import the
    # module it is executing (runpy warns).
    if name in ("NetBenchResult", "run_net_benchmark"):
        from . import netbench

        return getattr(netbench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
