"""System-level experiment runner: insert workloads on the full DB.

Runs the real engine (functional compactions over in-memory storage)
under a :class:`~repro.bench.observer.VirtualClock`, producing the
IOPS / compaction-bandwidth numbers of Figures 10 and 12.

Scaling.  The paper's setup (4 MB memtables, 2 MB SSTables, ~1 MB
sub-tasks, 10M-80M entries) is scaled down by ``SCALE`` = 32 in every
*capacity* dimension so a run completes in seconds.  To keep each
sub-task's read/compute/write ratio at the paper's operating point,
the *device granularity constants* (HDD positioning time, SSD per-op
latency and channel-chunk size) are scaled by the same factor —
a 32 KB sub-task on the scaled device costs exactly 1/32 of what a
1 MB sub-task costs on the calibrated preset, so every bandwidth
ratio, breakdown fraction, and saturation point is preserved.  See
DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.costmodel import CostModel
from ..core.procedures import ProcedureSpec
from ..db.db import DB
from ..devices import MemStorage
from ..devices.base import Device
from ..devices.hdd import HDD
from ..devices.presets import PAPER_HDD, PAPER_SSD
from ..devices.ssd import SSD
from ..lsm.options import Options
from ..workload.generators import InsertWorkload

__all__ = [
    "SCALE",
    "SystemRunResult",
    "scaled_device",
    "scaled_options",
    "run_insert_workload",
]

#: capacity scale-down factor vs the paper's configuration.
SCALE = 32

#: Paper data sizes are ~500x our scaled runs; HDD seek aging applies
#: to the paper-scale footprint.
FILL_SCALE = 2000


def scaled_device(kind: str) -> Device:
    """A device whose granularity constants match the 1/SCALE world."""
    if kind == "ssd":
        spec = replace(
            PAPER_SSD,
            channel_chunk=max(512, PAPER_SSD.channel_chunk // SCALE),
            read_latency_s=PAPER_SSD.read_latency_s / SCALE,
            write_latency_s=PAPER_SSD.write_latency_s / SCALE,
        )
        return SSD(spec, name="ssd-scaled")
    if kind == "hdd":
        spec = replace(
            PAPER_HDD,
            seek_s=PAPER_HDD.seek_s / SCALE,
            rotation_s=PAPER_HDD.rotation_s / SCALE,
            # Fragmentation on an aged LevelDB allocation grows seek
            # distance faster than raw fill; amplified so the paper's
            # Fig 10(b) bandwidth sag shows at our footprints.
            seek_scale_per_gb=PAPER_HDD.seek_scale_per_gb * 8,
        )
        return HDD(spec, name="hdd-scaled")
    raise KeyError(f"unknown device kind {kind!r}")


def scaled_options(**kw) -> Options:
    """Paper defaults scaled by SCALE (memtable 4 MB -> 128 KiB, ...)."""
    defaults = dict(
        memtable_bytes=(4 << 20) // SCALE,
        sstable_bytes=(2 << 20) // SCALE,
        block_bytes=4 * 1024,
        level1_bytes=(10 << 20) // SCALE,
        # The working sets are scaled ~500x while capacities scale 32x;
        # a smaller multiplier restores the paper's tree depth at our
        # entry counts (see EXPERIMENTS.md).
        level_multiplier=4,
        l0_compaction_trigger=4,
        compression="zlib",  # fast C codec: functional work only; the
        # virtual clock charges model costs regardless
    )
    defaults.update(kw)
    return Options(**defaults)


#: the paper's ~1 MB sub-task, scaled.
SCALED_SUBTASK = (1 << 20) // SCALE


@dataclass
class SystemRunResult:
    """Outcome of one insert-workload run."""

    n_ops: int
    spec: ProcedureSpec
    device: str
    virtual_seconds: float
    foreground_seconds: float
    flush_seconds: float
    compaction_seconds: float
    maintenance_seconds: float
    iops: float
    compaction_bandwidth: float
    compaction_input_bytes: int
    n_compactions: int
    n_flushes: int
    levels: list[int]

    def summary(self) -> str:
        return (
            f"{self.spec.kind:6s} on {self.device}: "
            f"{self.iops:10.0f} ops/s, "
            f"compaction {self.compaction_bandwidth / 1e6:7.2f} MB/s "
            f"({self.n_compactions} compactions)"
        )


def run_insert_workload(
    n: int,
    spec: ProcedureSpec,
    device: str = "ssd",
    options: Options | None = None,
    distribution: str = "uniform",
    value_bytes: int = 100,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> SystemRunResult:
    """Insert ``n`` entries through the engine under virtual timing."""
    from .observer import VirtualClock

    options = options or scaled_options()
    storage = MemStorage()
    dev = scaled_device(device)
    clock = VirtualClock(
        spec=spec,
        read_device=dev,
        write_device=dev,
        cost_model=cost_model or CostModel(),
        kv_bytes=16 + value_bytes,
        # bookkeeping costs live in the scaled time world too
        maintenance_per_compaction_s=0.004 / SCALE,
        trivial_move_s=0.0005 / SCALE,
        memtable_insert_s=2.0e-6 / SCALE,
    )
    if isinstance(dev, HDD):
        # Grow the seek distance with the (paper-scale) resident data.
        clock.on_shape_change = lambda: dev.set_fill_bytes(
            storage.total_bytes() * FILL_SCALE
        )
    workload = InsertWorkload(
        n=n, distribution=distribution, value_bytes=value_bytes, seed=seed
    )
    db = DB(storage, options, compaction_spec=spec, observer=clock)
    try:
        workload.apply_to(db)
        db.flush()
        levels = [db.num_files(lv) for lv in range(options.num_levels)]
        n_flushes = db.stats.flushes
    finally:
        db.close()
    return SystemRunResult(
        n_ops=n,
        spec=spec,
        device=device,
        virtual_seconds=clock.total_s,
        foreground_seconds=clock.foreground_s,
        flush_seconds=clock.flush_s,
        compaction_seconds=clock.compaction_s,
        maintenance_seconds=clock.maintenance_s,
        iops=clock.iops(n),
        compaction_bandwidth=clock.compaction_bandwidth(),
        compaction_input_bytes=clock.compaction_input_bytes,
        n_compactions=clock.n_compactions,
        n_flushes=n_flushes,
        levels=levels,
    )
