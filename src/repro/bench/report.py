"""Plain-text rendering of experiment results.

Every experiment produces rows of (label, numeric columns); this module
prints them as aligned monospace tables matching the figure/table ids
in EXPERIMENTS.md, so `pytest benchmarks/ -s` regenerates the paper's
series as readable text.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_fractions", "render_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Align columns; first column left, the rest right."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(
        h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
        for i, h in enumerate(headers)
    )
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(
                c.ljust(widths[i]) if i == 0 else c.rjust(widths[i])
                for i, c in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_fractions(fractions: dict[str, float]) -> str:
    """'read 41% | compute 40% | write 19%' style one-liner."""
    return " | ".join(f"{k} {v * 100:.1f}%" for k, v in fractions.items())


def render_series(name: str, xs: Sequence[Any], ys: Sequence[float]) -> str:
    """One figure series as 'name: x=..., y=...' pairs."""
    pairs = ", ".join(f"{x}:{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
