"""Closed-loop network load generator: YCSB mixes over the socket.

The embedded benchmarks (:mod:`repro.bench.runner`,
:mod:`repro.bench.latency`) measure compaction effects *in-process*
with a virtual clock.  This module measures them where a deployment
would: at the network edge.  ``run_net_benchmark`` starts a
:class:`repro.server.KVServer` over a real DB, fans a YCSB operation
mix (:class:`repro.workload.ycsb.YCSBWorkload`) out across N
closed-loop client connections — each connection is one thread with
one :class:`repro.server.SyncClient`, issuing its next operation only
after the previous one completed — and reports wall-clock throughput
plus the client-observed latency distribution.

Because the clients are closed-loop, an engine write pause surfaces
directly as tail latency (and as ``STALLED`` retries when the server
refuses writes during an L0 backup), which is exactly the paper's §I
claim made measurable end-to-end: run it once with
``ProcedureSpec.scp()`` and once with ``ProcedureSpec.pcp()`` and
compare p99.

Run from the command line::

    python -m repro.bench.netbench --mix a --ops 20000 --connections 4
"""

from __future__ import annotations

import argparse
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.procedures import ProcedureSpec
from ..db.db import DB
from ..devices import MemStorage
from ..devices.vfs import Storage
from ..lsm.options import Options
from ..server.client import ServerBusyError, SyncClient
from ..obs import LatencyHistogram
from ..server.server import ServerConfig, ServerThread
from ..workload.ycsb import INSERT, RMW, UPDATE, YCSBWorkload

__all__ = [
    "NetBenchResult",
    "main",
    "run_net_benchmark",
    "run_obs_overhead",
    "run_replication_bench",
    "run_scaling",
]


@dataclass
class NetBenchResult:
    """Outcome of one networked YCSB run."""

    mix: str
    n_ops: int
    connections: int
    wall_seconds: float
    ops_per_second: float
    op_counts: dict[str, int]
    stall_retries: int
    #: client-observed per-op latency (all connections merged)
    latency: LatencyHistogram = field(repr=False)
    #: server-side STATS snapshot taken right before shutdown
    server_stats: dict = field(repr=False, default_factory=dict)
    #: engine shard count (1 = plain DB, >1 = repro.cluster.ShardedDB)
    shards: int = 1
    #: follower replicas attached to the primary (0 = no replication)
    replicas: int = 0
    #: the primary's write ack level (0, N, or -1 = majority)
    repl_acks: int = 0
    #: live Prometheus scrapes completed during the run phase
    scrapes: int = 0
    #: total exposition samples those scrapes parsed
    scrape_samples: int = 0
    #: spans the traced clients recorded (0 when tracing was off)
    client_spans: int = 0
    #: wire-level reconnect retries the clients performed (only > 0
    #: with a retry policy, e.g. under a lossy chaos proxy)
    client_retries: int = 0
    #: chaos-proxy injections by kind ({} when no net fault plan ran)
    net_faults: dict = field(default_factory=dict)

    def percentile_ms(self, p: float) -> float:
        return self.latency.percentile(p) * 1e3

    def per_shard_stats(self) -> list[dict]:
        """Per-shard rollup from the final STATS snapshot ([] for N=1)."""
        return self.server_stats.get("cluster", {}).get("shards", [])

    def summary(self) -> str:
        shard_note = f" shards={self.shards}" if self.shards > 1 else ""
        if self.replicas:
            acks = "majority" if self.repl_acks < 0 else self.repl_acks
            shard_note += f" replicas={self.replicas} acks={acks}"
        return (
            f"ycsb-{self.mix}: {self.n_ops} ops over "
            f"{self.connections} connections{shard_note} in "
            f"{self.wall_seconds:.2f}s "
            f"→ {self.ops_per_second:,.0f} ops/s | latency "
            f"p50={self.percentile_ms(50):.3f}ms "
            f"p95={self.percentile_ms(95):.3f}ms "
            f"p99={self.percentile_ms(99):.3f}ms "
            f"max={self.latency.max_s * 1e3:.1f}ms | "
            f"stall_retries={self.stall_retries}"
            + (
                f" | client_retries={self.client_retries} "
                f"net_faults={self.net_faults}"
                if self.net_faults
                else ""
            )
        )


def _drive(
    shard: YCSBWorkload,
    host: str,
    port: int,
    histogram: LatencyHistogram,
    counts: dict[str, int],
    lock: threading.Lock,
    errors: list,
    tracer=None,
    retry_policy=None,
) -> None:
    """One closed-loop connection: apply a workload shard, timing ops."""
    local_counts: dict[str, int] = {}
    local_lat: list[float] = []
    client = SyncClient(host, port, tracer=tracer, retry_policy=retry_policy)
    try:
        if tracer is not None:
            client.hello()  # negotiate 2.1 so trace ids go on the wire
        for op in shard:
            t0 = time.perf_counter()
            if op.kind in (UPDATE, INSERT):
                client.put(op.key, op.value)
            elif op.kind == RMW:
                client.get(op.key)
                client.put(op.key, op.value)
            else:
                client.get(op.key)
            local_lat.append(time.perf_counter() - t0)
            local_counts[op.kind] = local_counts.get(op.kind, 0) + 1
        stalls = client.stall_retries
    except (ServerBusyError, ConnectionError, OSError) as exc:
        errors.append(exc)
        stalls = client.stall_retries
    finally:
        client.close()
    with lock:
        for seconds in local_lat:
            histogram.record(seconds)
        for kind, n in local_counts.items():
            counts[kind] = counts.get(kind, 0) + n
        counts["_stall_retries"] = counts.get("_stall_retries", 0) + stalls
        counts["_client_retries"] = (
            counts.get("_client_retries", 0) + client.retries
        )


def run_net_benchmark(
    mix: str = "a",
    n_ops: int = 10000,
    record_count: int = 2000,
    value_bytes: int = 100,
    connections: int = 4,
    storage: Optional[Storage] = None,
    options: Optional[Options] = None,
    compaction_spec: Optional[ProcedureSpec] = None,
    server_config: Optional[ServerConfig] = None,
    seed: int = 0,
    shards: int = 1,
    pool_workers: Optional[int] = None,
    replicas: int = 0,
    repl_acks: "int | str" = 0,
    obs=None,
    trace_clients: bool = False,
    scrape_interval_s: Optional[float] = None,
    net_fault_plan=None,
    retry_policy=None,
    distribution: str = "zipfian",
) -> NetBenchResult:
    """Load a keyspace, then run ``n_ops`` of YCSB mix ``mix`` through
    ``connections`` concurrent closed-loop socket clients.

    The server (and its DB, in background-compaction mode) lives for
    the duration of the call and is shut down gracefully afterwards,
    so a caller passing an ``OSStorage`` gets a directory that passes
    ``verify_db``.

    ``shards`` > 1 serves an in-memory
    :class:`repro.cluster.ShardedDB` instead of one DB (same wire
    protocol; ``pool_workers`` caps the cluster's shared compaction
    compute pool).  ``storage`` cannot be combined with ``shards``.

    ``replicas`` > 0 attaches that many in-memory loopback followers
    to the (single-shard) primary, and every write the clients issue
    must collect ``repl_acks`` follower acks (``"majority"`` = -1)
    before the server says OK — the knob the replication benchmark
    sweeps.

    Telemetry knobs (the obs-overhead benchmark sweeps these): ``obs``
    is an :class:`repro.obs.Observability` for the server DB (enabled
    tracer / event log), ``trace_clients`` gives every connection its
    own enabled tracer so each op carries a trace id end to end, and
    ``scrape_interval_s`` runs a live Prometheus scrape loop against
    the METRICS opcode for the whole run phase — telemetry measured
    under load, not at rest.

    ``net_fault_plan`` (a :class:`repro.devices.NetFaultPlan`) routes
    the run-phase client connections through a
    :class:`repro.devices.FaultyProxy` injecting the plan's faults;
    pair it with ``retry_policy`` (a
    :class:`repro.server.RetryPolicy`, applied to every run-phase
    client) so the load survives — the result then reports
    ``client_retries`` and the proxy's injection counts.  The load
    phase and followers bypass the proxy: the faults price the
    *serving* path.
    """
    workload = YCSBWorkload(
        mix, n_ops, record_count, value_bytes=value_bytes, seed=seed,
        distribution=distribution,
    )
    acks = -1 if repl_acks == "majority" else int(repl_acks)
    hub = None
    followers: list = []
    follower_servers: list[ServerThread] = []
    if replicas > 0 and shards > 1:
        raise ValueError("pass replicas or shards>1, not both")
    if shards > 1:
        if storage is not None:
            raise ValueError("pass shards>1 or storage, not both")
        from ..cluster import ShardedDB

        db = ShardedDB.in_memory(
            shards,
            options=options or Options(),
            compaction_spec=compaction_spec,
            background=True,
            pool_workers=pool_workers,
            **({"obs": obs} if obs is not None else {}),
        )
    else:
        opts = options or Options()
        if replicas > 0 and opts.wal_retain_bytes == 0:
            import dataclasses

            opts = dataclasses.replace(
                opts, wal_retain_bytes=8 * 1024 * 1024
            )
        db = DB(
            storage if storage is not None else MemStorage(),
            opts,
            compaction_spec=compaction_spec,
            background=True,
            **({"obs": obs} if obs is not None else {}),
        )
    if replicas > 0:
        from ..replication import ReplicationHub

        hub = ReplicationHub(db)
        server_config = server_config or ServerConfig()
        server_config.repl_acks = acks
    handle = ServerThread(db, server_config, hub=hub).start()
    if replicas > 0:
        from ..replication import Follower

        for i in range(replicas):
            fstorage = MemStorage()

            def _factory(fstorage=fstorage):
                return DB(fstorage, Options(), background=True)

            fdb = _factory()
            follower = Follower(
                fdb, fstorage, _factory,
                handle.host, handle.port, f"bench-f{i}",
            ).start()
            followers.append(follower)
            follower_servers.append(
                ServerThread(
                    fdb,
                    ServerConfig(read_only=True),
                    own_db=False,
                    follower=follower,
                ).start()
            )
    if replicas > 0:
        # Let every follower subscribe before the load phase, so
        # ack-gated writes never stall on an empty follower set.
        deadline = time.monotonic() + 10.0
        while hub.n_followers < replicas and time.monotonic() < deadline:
            time.sleep(0.01)
    proxy = None
    client_host, client_port = handle.host, handle.port
    if net_fault_plan is not None:
        from ..devices import FaultyProxy

        proxy = FaultyProxy(
            handle.host, handle.port, plan=net_fault_plan
        ).start()
        client_host, client_port = proxy.endpoint
    histogram = LatencyHistogram()
    counts: dict[str, int] = {}
    lock = threading.Lock()
    errors: list = []
    try:
        # Load phase over one connection (bulk, batched).
        loader = SyncClient(handle.host, handle.port)
        try:
            batch: list[tuple] = []
            for key, value in workload.load_phase():
                batch.append(("put", key, value))
                if len(batch) >= 256:
                    loader.batch(batch)
                    batch.clear()
            if batch:
                loader.batch(batch)
        finally:
            loader.close()

        client_tracer = None
        if trace_clients:
            from ..obs import Tracer

            client_tracer = Tracer(enabled=True)

        # Optional live scrape loop: a Prometheus pull against the
        # METRICS opcode every interval, concurrent with the load.
        scrape_stop = threading.Event()
        scrape_counts = {"scrapes": 0, "samples": 0}
        scraper = None
        if scrape_interval_s is not None:
            from ..obs import parse_prometheus

            def _scrape_loop() -> None:
                probe = SyncClient(handle.host, handle.port)
                try:
                    while not scrape_stop.is_set():
                        series = parse_prometheus(probe.metrics("prom"))
                        scrape_counts["scrapes"] += 1
                        scrape_counts["samples"] += sum(
                            len(s) for s in series.values()
                        )
                        scrape_stop.wait(scrape_interval_s)
                except (ConnectionError, OSError):
                    pass
                finally:
                    probe.close()

            scraper = threading.Thread(
                target=_scrape_loop, name="netbench-scrape", daemon=True
            )

        # Run phase: one thread + one connection per shard.
        threads = [
            threading.Thread(
                target=_drive,
                args=(shard, client_host, client_port, histogram, counts,
                      lock, errors, client_tracer, retry_policy),
                name=f"netbench-{i}",
            )
            for i, shard in enumerate(workload.split(connections))
        ]
        t0 = time.perf_counter()
        if scraper is not None:
            scraper.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        if scraper is not None:
            scrape_stop.set()
            scraper.join(timeout=5)

        probe = SyncClient(handle.host, handle.port)
        try:
            server_stats = probe.stats()
        finally:
            probe.close()
    finally:
        if proxy is not None:
            proxy.close()
        handle.stop()
        for server in follower_servers:
            server.stop()
        for follower in followers:
            follower.stop()
            follower.db.close()
    if errors:
        raise RuntimeError(f"{len(errors)} connection(s) failed: {errors[0]}")
    stall_retries = counts.pop("_stall_retries", 0)
    client_retries = counts.pop("_client_retries", 0)
    done = sum(counts.values())
    return NetBenchResult(
        mix=mix,
        n_ops=done,
        connections=connections,
        wall_seconds=wall,
        ops_per_second=done / wall if wall > 0 else 0.0,
        op_counts=counts,
        stall_retries=stall_retries,
        latency=histogram,
        server_stats=server_stats,
        shards=shards,
        replicas=replicas,
        repl_acks=acks,
        scrapes=scrape_counts["scrapes"],
        scrape_samples=scrape_counts["samples"],
        client_spans=len(client_tracer) if client_tracer is not None else 0,
        client_retries=client_retries,
        net_faults=dict(proxy.injected) if proxy is not None else {},
    )


def _stall_bound_options() -> Options:
    """A deliberately stall-prone single-DB configuration.

    Tiny memtables and a low L0 stop trigger make one engine's write
    path bound by compaction backpressure (STALLED + client backoff),
    which is the regime sharding relieves: each shard takes 1/N of the
    inserts, so L0 backs up N× slower.  Used by the ``--scaling``
    sweep so the cluster speedup measures backpressure relief, not
    Python compute parallelism.
    """
    return Options(
        memtable_bytes=8 * 1024,
        sstable_bytes=8 * 1024,
        block_bytes=1024,
        level1_bytes=64 * 1024,
        level_multiplier=4,
        l0_compaction_trigger=2,
        l0_stop_writes_trigger=3,
    )


def run_scaling(
    shard_counts: list[int],
    mix: str = "a",
    n_ops: int = 4000,
    record_count: int = 1000,
    value_bytes: int = 100,
    connections: int = 4,
    compaction_spec: Optional[ProcedureSpec] = None,
    pool_workers: Optional[int] = None,
    seed: int = 0,
) -> dict:
    """Run the same load at each shard count; return the scaling table.

    The single-shard baseline uses the stall-prone configuration (see
    :func:`_stall_bound_options`), every run keeps the identical
    workload/connection count, and the returned dict (the
    ``BENCH_cluster.json`` payload) records throughput, latency
    percentiles, stall retries, speedup vs the first entry, and the
    shared-pool counters proving compute stayed capped.
    """
    spec = compaction_spec or ProcedureSpec.cppcp(2, subtask_bytes=16 * 1024)
    runs = []
    for n in shard_counts:
        result = run_net_benchmark(
            mix=mix,
            n_ops=n_ops,
            record_count=record_count,
            value_bytes=value_bytes,
            connections=connections,
            options=_stall_bound_options(),
            compaction_spec=spec,
            seed=seed,
            shards=n,
            pool_workers=pool_workers,
        )
        engine = result.server_stats.get("engine", {})
        gauges = engine.get("gauges", {})
        runs.append(
            {
                "shards": n,
                "ops_per_second": result.ops_per_second,
                "wall_seconds": result.wall_seconds,
                "p50_ms": result.percentile_ms(50),
                "p95_ms": result.percentile_ms(95),
                "p99_ms": result.percentile_ms(99),
                "stall_retries": result.stall_retries,
                "write_stalls": result.server_stats.get("db", {}).get(
                    "write_stalls"
                ),
                "pool_workers": gauges.get("cluster.pool.workers"),
                "pool_max_active": gauges.get("cluster.pool.max_active"),
                "pool_tasks": engine.get("counters", {}).get(
                    "cluster.pool.tasks"
                ),
                "per_shard": result.per_shard_stats(),
            }
        )
    base = runs[0]["ops_per_second"] or 1.0
    for entry in runs:
        entry["speedup_vs_first"] = entry["ops_per_second"] / base
    return {
        "benchmark": "netbench-cluster-scaling",
        "mix": mix,
        "n_ops": n_ops,
        "record_count": record_count,
        "connections": connections,
        "procedure": spec.kind,
        "runs": runs,
    }


def run_replication_bench(
    ack_levels: Optional[list] = None,
    replicas: int = 2,
    mix: str = "a",
    n_ops: int = 4000,
    record_count: int = 1000,
    value_bytes: int = 100,
    connections: int = 4,
    seed: int = 0,
) -> dict:
    """Sweep the write ack level over a 1-primary/N-follower loopback.

    The first run is the single-node baseline (no replication); then
    the identical workload repeats with ``replicas`` followers at each
    ack level.  The returned dict is the ``BENCH_replication.json``
    payload: throughput, latency percentiles, and stall retries per
    level — the measured price of each durability step (local only →
    1 follower → majority).
    """
    levels = ack_levels if ack_levels is not None else [0, 1, "majority"]
    runs = []
    for replica_count, level in [(0, 0)] + [(replicas, lv) for lv in levels]:
        result = run_net_benchmark(
            mix=mix,
            n_ops=n_ops,
            record_count=record_count,
            value_bytes=value_bytes,
            connections=connections,
            seed=seed,
            replicas=replica_count,
            repl_acks=level,
        )
        repl = result.server_stats.get("repl", {})
        runs.append(
            {
                "replicas": replica_count,
                "ack_level": str(level) if replica_count else "baseline",
                "ops_per_second": result.ops_per_second,
                "wall_seconds": result.wall_seconds,
                "p50_ms": result.percentile_ms(50),
                "p95_ms": result.percentile_ms(95),
                "p99_ms": result.percentile_ms(99),
                "stall_retries": result.stall_retries,
                "followers": repl.get("followers", []),
            }
        )
    base = runs[0]["ops_per_second"] or 1.0
    for entry in runs:
        entry["throughput_vs_baseline"] = entry["ops_per_second"] / base
    return {
        "benchmark": "netbench-replication",
        "mix": mix,
        "n_ops": n_ops,
        "record_count": record_count,
        "connections": connections,
        "replicas": replicas,
        "runs": runs,
    }


def run_obs_overhead(
    mix: str = "a",
    n_ops: int = 4000,
    record_count: int = 1000,
    value_bytes: int = 100,
    connections: int = 4,
    seed: int = 0,
    scrape_interval_s: float = 0.2,
) -> dict:
    """Measure what telemetry costs at the network edge.

    Three identical runs: ``off`` (the default path — registry counters
    only, no scraping, tracing, or events), ``metrics`` (a live
    Prometheus scrape loop pulling the METRICS opcode throughout the
    run), and ``metrics+tracing`` (scraping plus an enabled server
    tracer, an event log, and traced clients stamping every request
    with a trace id).  The returned dict is the
    ``BENCH_obs_overhead.json`` payload; ``throughput_vs_off`` per run
    is the headline — the ``off`` path must stay within noise of the
    untelemetered baseline.
    """
    from ..obs import EventLog, Observability, Tracer

    common = dict(
        mix=mix,
        n_ops=n_ops,
        record_count=record_count,
        value_bytes=value_bytes,
        connections=connections,
        seed=seed,
    )
    runs = []
    events_seen = {"n": 0}
    for mode in ("off", "metrics", "metrics+tracing"):
        kwargs = dict(common)
        if mode != "off":
            kwargs["scrape_interval_s"] = scrape_interval_s
        if mode == "metrics+tracing":
            events_seen["n"] = 0
            kwargs["obs"] = Observability(
                tracer=Tracer(enabled=True),
                events=EventLog(
                    lambda record: events_seen.__setitem__(
                        "n", events_seen["n"] + 1
                    ),
                    slow_op_threshold_s=None,
                ),
            )
            kwargs["trace_clients"] = True
        result = run_net_benchmark(**kwargs)
        runs.append(
            {
                "mode": mode,
                "ops_per_second": result.ops_per_second,
                "wall_seconds": result.wall_seconds,
                "p50_ms": result.percentile_ms(50),
                "p95_ms": result.percentile_ms(95),
                "p99_ms": result.percentile_ms(99),
                "stall_retries": result.stall_retries,
                "scrapes": result.scrapes,
                "scrape_samples": result.scrape_samples,
                "client_spans": result.client_spans,
                "events_emitted": (
                    events_seen["n"] if mode == "metrics+tracing" else 0
                ),
            }
        )
    base = runs[0]["ops_per_second"] or 1.0
    for entry in runs:
        entry["throughput_vs_off"] = entry["ops_per_second"] / base
    return {
        "benchmark": "netbench-obs-overhead",
        "mix": mix,
        "n_ops": n_ops,
        "record_count": record_count,
        "connections": connections,
        "scrape_interval_s": scrape_interval_s,
        "runs": runs,
    }


def _policy_sweep_options(policy: str) -> Options:
    """A compaction-heavy configuration for the policy sweep.

    Tiny memtables/tables and a shallow byte budget force data through
    several levels during the run, so the layout choice (leveled
    rewrite-on-overlap vs tiered whole-run pushes) dominates the bytes
    written — which is exactly what the sweep contrasts.  The stop
    trigger leaves room for a runs=4 tier to fill before stalling.
    """
    return Options(
        memtable_bytes=8 * 1024,
        sstable_bytes=8 * 1024,
        block_bytes=1024,
        level1_bytes=32 * 1024,
        level_multiplier=4,
        num_levels=5,
        l0_compaction_trigger=4,
        l0_stop_writes_trigger=8,
        compaction_policy=policy,
    )


def run_policy_sweep(
    policies: Optional[list[str]] = None,
    n_ops: int = 6000,
    record_count: int = 1500,
    value_bytes: int = 100,
    connections: int = 4,
    compaction_spec: Optional[ProcedureSpec] = None,
    seed: int = 0,
) -> dict:
    """Contrast the compaction policies on write-heavy and uniform
    workloads; return the ``BENCH_policies.json`` payload.

    Every policy serves the identical op stream on the identical
    compaction-heavy configuration (:func:`_policy_sweep_options`).
    Per run the table records throughput/latency plus the two
    amplification figures from the engine's own counters:

    * ``write_amp`` — SST bytes written (flush + compaction outputs)
      per logical byte the clients wrote (``wal.bytes``).  Tiering's
      whole-run pushes never rewrite the target level, so it should
      beat leveling here, and by design, not by noise.
    * ``space_amp`` — final on-disk table bytes per live logical byte
      (keys live once; tiering pays here, leveling wins).
    """
    policies = policies or ["leveled", "tiered:runs=4", "lazy-leveled:runs=4"]
    spec = compaction_spec or ProcedureSpec.scp()
    workloads = [
        # Write-heavy zipfian: compaction-bound, the tiered sweet spot.
        {"name": "write-heavy", "mix": "w", "distribution": "zipfian"},
        # Uniform 50/50: no hot keys, every level sees every key range.
        {"name": "uniform", "mix": "a", "distribution": "uniform"},
    ]
    runs = []
    for workload in workloads:
        for policy in policies:
            result = run_net_benchmark(
                mix=workload["mix"],
                n_ops=n_ops,
                record_count=record_count,
                value_bytes=value_bytes,
                connections=connections,
                options=_policy_sweep_options(policy),
                compaction_spec=spec,
                seed=seed,
                distribution=workload["distribution"],
            )
            db_stats = result.server_stats.get("db", {})
            counters = result.server_stats.get("engine", {}).get(
                "counters", {}
            )
            logical = counters.get("wal.bytes", 0) or 1
            sst_written = counters.get("db.flush_bytes", 0) + counters.get(
                "compaction.output_bytes", 0
            )
            # Live set ≈ the loaded keyspace (updates replace in place,
            # mix "w"/"a" never insert); key format is fixed-width.
            live_bytes = record_count * (16 + value_bytes) or 1
            runs.append(
                {
                    "workload": workload["name"],
                    "mix": workload["mix"],
                    "distribution": workload["distribution"],
                    "policy": db_stats.get("compaction_policy", policy),
                    "ops_per_second": result.ops_per_second,
                    "wall_seconds": result.wall_seconds,
                    "p50_ms": result.percentile_ms(50),
                    "p99_ms": result.percentile_ms(99),
                    "stall_retries": result.stall_retries,
                    "write_stalls": db_stats.get("write_stalls"),
                    "compactions": db_stats.get("compactions"),
                    "logical_bytes": logical,
                    "sst_bytes_written": sst_written,
                    "write_amp": sst_written / logical,
                    "final_table_bytes": db_stats.get("total_bytes", 0),
                    "space_amp": db_stats.get("total_bytes", 0) / live_bytes,
                }
            )
    return {
        "benchmark": "netbench-policy-sweep",
        "n_ops": n_ops,
        "record_count": record_count,
        "value_bytes": value_bytes,
        "connections": connections,
        "procedure": spec.kind,
        "policies": policies,
        "runs": runs,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="netbench",
        description="Closed-loop YCSB load over the repro.server socket.",
    )
    parser.add_argument("--mix", default="a", help="YCSB mix (a/b/c/d/f)")
    parser.add_argument("--ops", type=int, default=10000)
    parser.add_argument("--records", type=int, default=2000)
    parser.add_argument("--value-bytes", type=int, default=100)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument(
        "--procedure", default="scp", choices=["scp", "pcp", "sppcp", "cppcp"],
        help="compaction procedure under test",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="serve an in-memory N-shard cluster instead of one DB",
    )
    parser.add_argument(
        "--pool-workers", type=int, default=None,
        help="cap on the cluster's shared compaction compute pool "
             "(default: the procedure's own worker count)",
    )
    parser.add_argument(
        "--scaling", metavar="N,N,...", default=None,
        help="run the stall-bound scaling sweep at these shard counts "
             "(e.g. 1,2,4) instead of a single run",
    )
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="attach N in-memory loopback followers to the primary",
    )
    parser.add_argument(
        "--repl-acks", metavar="N|majority", default="0",
        help="follower acks per write when --replicas > 0 "
             "(default 0; 'majority' = cluster majority)",
    )
    parser.add_argument(
        "--replication-sweep", action="store_true",
        help="run the ack-level sweep (baseline, then --replicas "
             "followers at ack 0/1/majority) instead of a single run",
    )
    parser.add_argument(
        "--net-fault-plan", metavar="JSON", default=None,
        help="route run-phase clients through a lossy chaos proxy "
             "driven by this NetFaultPlan JSON (clients get a retry "
             "policy so the load survives), e.g. "
             '\'{"seed": 7, "cut_rate": 0.02, "latency_ms": 2}\'',
    )
    parser.add_argument(
        "--obs-overhead", action="store_true",
        help="run the telemetry-overhead sweep (off / live metrics "
             "scraping / scraping+tracing+events) instead of a "
             "single run",
    )
    parser.add_argument(
        "--compaction-policy", metavar="SPEC", default=None,
        help="compaction policy for a single run (leveled, "
             "tiered:runs=N, lazy-leveled:runs=N)",
    )
    parser.add_argument(
        "--distribution", default="zipfian",
        choices=["zipfian", "uniform"],
        help="key-choice distribution for non-insert ops",
    )
    parser.add_argument(
        "--policy-sweep", action="store_true",
        help="contrast leveled/tiered/lazy-leveled on write-heavy and "
             "uniform workloads (write-amp, space-amp, ops/s) instead "
             "of a single run",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write the result table as JSON "
             "(with --scaling, --replication-sweep, or --policy-sweep)",
    )
    args = parser.parse_args(argv)

    if args.policy_sweep:
        table = run_policy_sweep(
            n_ops=args.ops,
            record_count=args.records,
            value_bytes=args.value_bytes,
            connections=args.connections,
            compaction_spec=getattr(ProcedureSpec, args.procedure)(),
            seed=args.seed,
        )
        for entry in table["runs"]:
            print(
                f"{entry['workload']}/{entry['policy']}: "
                f"{entry['ops_per_second']:,.0f} ops/s "
                f"write_amp={entry['write_amp']:.2f} "
                f"space_amp={entry['space_amp']:.2f} "
                f"p99={entry['p99_ms']:.2f}ms "
                f"compactions={entry['compactions']}"
            )
        if args.json_out:
            import json

            with open(args.json_out, "w") as fh:
                json.dump(table, fh, indent=2, sort_keys=True)
            print(f"wrote {args.json_out}")
        return 0

    if args.obs_overhead:
        table = run_obs_overhead(
            mix=args.mix,
            n_ops=args.ops,
            record_count=args.records,
            value_bytes=args.value_bytes,
            connections=args.connections,
            seed=args.seed,
        )
        for entry in table["runs"]:
            print(
                f"{entry['mode']}: {entry['ops_per_second']:,.0f} ops/s "
                f"({entry['throughput_vs_off']:.2f}x of off) "
                f"p99={entry['p99_ms']:.2f}ms "
                f"scrapes={entry['scrapes']} "
                f"client_spans={entry['client_spans']} "
                f"events={entry['events_emitted']}"
            )
        if args.json_out:
            import json

            with open(args.json_out, "w") as fh:
                json.dump(table, fh, indent=2, sort_keys=True)
            print(f"wrote {args.json_out}")
        return 0

    if args.replication_sweep:
        table = run_replication_bench(
            replicas=args.replicas or 2,
            mix=args.mix,
            n_ops=args.ops,
            record_count=args.records,
            value_bytes=args.value_bytes,
            connections=args.connections,
            seed=args.seed,
        )
        for entry in table["runs"]:
            print(
                f"replicas={entry['replicas']} acks={entry['ack_level']}: "
                f"{entry['ops_per_second']:,.0f} ops/s "
                f"({entry['throughput_vs_baseline']:.2f}x of baseline) "
                f"p99={entry['p99_ms']:.2f}ms "
                f"stall_retries={entry['stall_retries']}"
            )
        if args.json_out:
            import json

            with open(args.json_out, "w") as fh:
                json.dump(table, fh, indent=2, sort_keys=True)
            print(f"wrote {args.json_out}")
        return 0

    if args.scaling is not None:
        shard_counts = [int(n) for n in args.scaling.split(",") if n.strip()]
        table = run_scaling(
            shard_counts,
            mix=args.mix,
            n_ops=args.ops,
            record_count=args.records,
            value_bytes=args.value_bytes,
            connections=args.connections,
            pool_workers=args.pool_workers,
            seed=args.seed,
        )
        for entry in table["runs"]:
            print(
                f"shards={entry['shards']}: "
                f"{entry['ops_per_second']:,.0f} ops/s "
                f"(speedup {entry['speedup_vs_first']:.2f}x) "
                f"p99={entry['p99_ms']:.2f}ms "
                f"stall_retries={entry['stall_retries']} "
                f"pool_max_active={entry['pool_max_active']}"
            )
        if args.json_out:
            import json

            with open(args.json_out, "w") as fh:
                json.dump(table, fh, indent=2, sort_keys=True)
            print(f"wrote {args.json_out}")
        return 0

    net_fault_plan = None
    retry_policy = None
    if args.net_fault_plan is not None:
        from ..devices import NetFaultPlan
        from ..server import RetryPolicy

        net_fault_plan = NetFaultPlan.from_json(args.net_fault_plan)
        retry_policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.01, seed=args.seed
        )

    spec = getattr(ProcedureSpec, args.procedure)()
    options = (
        Options(compaction_policy=args.compaction_policy)
        if args.compaction_policy is not None
        else None
    )
    result = run_net_benchmark(
        mix=args.mix,
        n_ops=args.ops,
        record_count=args.records,
        value_bytes=args.value_bytes,
        connections=args.connections,
        options=options,
        compaction_spec=spec,
        seed=args.seed,
        shards=args.shards,
        pool_workers=args.pool_workers,
        replicas=args.replicas,
        repl_acks=args.repl_acks,
        net_fault_plan=net_fault_plan,
        retry_policy=retry_policy,
        distribution=args.distribution,
    )
    print(result.summary())
    db_stats = result.server_stats.get("db", {})
    print(
        f"engine: flushes={db_stats.get('flushes')} "
        f"compactions={db_stats.get('compactions')} "
        f"write_stalls={db_stats.get('write_stalls')} "
        f"stall_rejections="
        f"{result.server_stats.get('server', {}).get('stall_rejections')}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
