"""Closed-loop network load generator: YCSB mixes over the socket.

The embedded benchmarks (:mod:`repro.bench.runner`,
:mod:`repro.bench.latency`) measure compaction effects *in-process*
with a virtual clock.  This module measures them where a deployment
would: at the network edge.  ``run_net_benchmark`` starts a
:class:`repro.server.KVServer` over a real DB, fans a YCSB operation
mix (:class:`repro.workload.ycsb.YCSBWorkload`) out across N
closed-loop client connections — each connection is one thread with
one :class:`repro.server.SyncClient`, issuing its next operation only
after the previous one completed — and reports wall-clock throughput
plus the client-observed latency distribution.

Because the clients are closed-loop, an engine write pause surfaces
directly as tail latency (and as ``STALLED`` retries when the server
refuses writes during an L0 backup), which is exactly the paper's §I
claim made measurable end-to-end: run it once with
``ProcedureSpec.scp()`` and once with ``ProcedureSpec.pcp()`` and
compare p99.

Run from the command line::

    python -m repro.bench.netbench --mix a --ops 20000 --connections 4
"""

from __future__ import annotations

import argparse
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.procedures import ProcedureSpec
from ..db.db import DB
from ..devices import MemStorage
from ..devices.vfs import Storage
from ..lsm.options import Options
from ..server.client import ServerBusyError, SyncClient
from ..obs import LatencyHistogram
from ..server.server import ServerConfig, ServerThread
from ..workload.ycsb import INSERT, RMW, UPDATE, YCSBWorkload

__all__ = ["NetBenchResult", "run_net_benchmark", "main"]


@dataclass
class NetBenchResult:
    """Outcome of one networked YCSB run."""

    mix: str
    n_ops: int
    connections: int
    wall_seconds: float
    ops_per_second: float
    op_counts: dict[str, int]
    stall_retries: int
    #: client-observed per-op latency (all connections merged)
    latency: LatencyHistogram = field(repr=False)
    #: server-side STATS snapshot taken right before shutdown
    server_stats: dict = field(repr=False, default_factory=dict)

    def percentile_ms(self, p: float) -> float:
        return self.latency.percentile(p) * 1e3

    def summary(self) -> str:
        return (
            f"ycsb-{self.mix}: {self.n_ops} ops over "
            f"{self.connections} connections in {self.wall_seconds:.2f}s "
            f"→ {self.ops_per_second:,.0f} ops/s | latency "
            f"p50={self.percentile_ms(50):.3f}ms "
            f"p95={self.percentile_ms(95):.3f}ms "
            f"p99={self.percentile_ms(99):.3f}ms "
            f"max={self.latency.max_s * 1e3:.1f}ms | "
            f"stall_retries={self.stall_retries}"
        )


def _drive(
    shard: YCSBWorkload,
    host: str,
    port: int,
    histogram: LatencyHistogram,
    counts: dict[str, int],
    lock: threading.Lock,
    errors: list,
) -> None:
    """One closed-loop connection: apply a workload shard, timing ops."""
    local_counts: dict[str, int] = {}
    local_lat: list[float] = []
    client = SyncClient(host, port)
    try:
        for op in shard:
            t0 = time.perf_counter()
            if op.kind in (UPDATE, INSERT):
                client.put(op.key, op.value)
            elif op.kind == RMW:
                client.get(op.key)
                client.put(op.key, op.value)
            else:
                client.get(op.key)
            local_lat.append(time.perf_counter() - t0)
            local_counts[op.kind] = local_counts.get(op.kind, 0) + 1
        stalls = client.stall_retries
    except (ServerBusyError, ConnectionError, OSError) as exc:
        errors.append(exc)
        stalls = client.stall_retries
    finally:
        client.close()
    with lock:
        for seconds in local_lat:
            histogram.record(seconds)
        for kind, n in local_counts.items():
            counts[kind] = counts.get(kind, 0) + n
        counts["_stall_retries"] = counts.get("_stall_retries", 0) + stalls


def run_net_benchmark(
    mix: str = "a",
    n_ops: int = 10000,
    record_count: int = 2000,
    value_bytes: int = 100,
    connections: int = 4,
    storage: Optional[Storage] = None,
    options: Optional[Options] = None,
    compaction_spec: Optional[ProcedureSpec] = None,
    server_config: Optional[ServerConfig] = None,
    seed: int = 0,
) -> NetBenchResult:
    """Load a keyspace, then run ``n_ops`` of YCSB mix ``mix`` through
    ``connections`` concurrent closed-loop socket clients.

    The server (and its DB, in background-compaction mode) lives for
    the duration of the call and is shut down gracefully afterwards,
    so a caller passing an ``OSStorage`` gets a directory that passes
    ``verify_db``.
    """
    workload = YCSBWorkload(
        mix, n_ops, record_count, value_bytes=value_bytes, seed=seed
    )
    db = DB(
        storage if storage is not None else MemStorage(),
        options or Options(),
        compaction_spec=compaction_spec,
        background=True,
    )
    handle = ServerThread(db, server_config).start()
    histogram = LatencyHistogram()
    counts: dict[str, int] = {}
    lock = threading.Lock()
    errors: list = []
    try:
        # Load phase over one connection (bulk, batched).
        loader = SyncClient(handle.host, handle.port)
        try:
            batch: list[tuple] = []
            for key, value in workload.load_phase():
                batch.append(("put", key, value))
                if len(batch) >= 256:
                    loader.batch(batch)
                    batch.clear()
            if batch:
                loader.batch(batch)
        finally:
            loader.close()

        # Run phase: one thread + one connection per shard.
        threads = [
            threading.Thread(
                target=_drive,
                args=(shard, handle.host, handle.port, histogram, counts,
                      lock, errors),
                name=f"netbench-{i}",
            )
            for i, shard in enumerate(workload.split(connections))
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0

        probe = SyncClient(handle.host, handle.port)
        try:
            server_stats = probe.stats()
        finally:
            probe.close()
    finally:
        handle.stop()
    if errors:
        raise RuntimeError(f"{len(errors)} connection(s) failed: {errors[0]}")
    stall_retries = counts.pop("_stall_retries", 0)
    done = sum(counts.values())
    return NetBenchResult(
        mix=mix,
        n_ops=done,
        connections=connections,
        wall_seconds=wall,
        ops_per_second=done / wall if wall > 0 else 0.0,
        op_counts=counts,
        stall_retries=stall_retries,
        latency=histogram,
        server_stats=server_stats,
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="netbench",
        description="Closed-loop YCSB load over the repro.server socket.",
    )
    parser.add_argument("--mix", default="a", help="YCSB mix (a/b/c/d/f)")
    parser.add_argument("--ops", type=int, default=10000)
    parser.add_argument("--records", type=int, default=2000)
    parser.add_argument("--value-bytes", type=int, default=100)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument(
        "--procedure", default="scp", choices=["scp", "pcp", "sppcp", "cppcp"],
        help="compaction procedure under test",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    spec = getattr(ProcedureSpec, args.procedure)()
    result = run_net_benchmark(
        mix=args.mix,
        n_ops=args.ops,
        record_count=args.records,
        value_bytes=args.value_bytes,
        connections=args.connections,
        compaction_spec=spec,
        seed=args.seed,
    )
    print(result.summary())
    db_stats = result.server_stats.get("db", {})
    print(
        f"engine: flushes={db_stats.get('flushes')} "
        f"compactions={db_stats.get('compactions')} "
        f"write_stalls={db_stats.get('write_stalls')} "
        f"stall_rejections="
        f"{result.server_stats.get('server', {}).get('stall_rejections')}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
