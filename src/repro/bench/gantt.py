"""ASCII Gantt rendering of compaction schedules and span traces.

The paper explains PCP with timeline drawings (Figs 3, 4, 6, 7: which
sub-task occupies which resource when).  :func:`render_gantt` produces
the same picture from a :class:`~repro.core.backends.simbackend.ScheduleResult`
timeline, one row per (stage, worker), sub-tasks labelled 0-9a-z::

    read  |000111222333
    cpu   |...000111222333
    write |......000111222333

:func:`render_span_gantt` draws the same picture from *real* spans
recorded by a :class:`repro.obs.Tracer` (stage = span category, worker
= recording thread), so a live PCP compaction renders next to its
simulated schedule in the same format.

Useful in examples and docs; also a debugging aid for the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.backends.simbackend import ScheduleResult, TimelineEvent

__all__ = ["render_gantt", "render_span_gantt", "schedule_from_spans"]

_STAGE_ORDER = {"read": 0, "compute": 1, "write": 2}
_LABELS = "0123456789abcdefghijklmnopqrstuvwxyz"


def _label(index: int) -> str:
    return _LABELS[index % len(_LABELS)]


def render_gantt(result: "ScheduleResult | SpanSchedule", width: int = 72) -> str:
    """Render the schedule's timeline as fixed-width ASCII rows.

    Accepts anything with ``timeline`` / ``makespan`` /
    ``breakdown_fractions()`` — a simulated :class:`ScheduleResult` or
    a :class:`SpanSchedule` built from tracer spans.
    """
    if not result.timeline or result.makespan <= 0:
        return "(empty schedule)"
    scale = (width - 1) / result.makespan

    # Rows keyed by (stage order, stage, worker).
    rows: dict[tuple[int, str, int], list[str]] = {}
    for ev in result.timeline:
        key = (_STAGE_ORDER.get(ev.stage, 9), ev.stage, ev.worker)
        rows.setdefault(key, [" "] * width)

    for ev in result.timeline:
        key = (_STAGE_ORDER.get(ev.stage, 9), ev.stage, ev.worker)
        row = rows[key]
        start = int(ev.start * scale)
        end = max(start + 1, int(ev.end * scale))
        for i in range(start, min(end, width)):
            row[i] = _label(ev.index)

    lines = []
    label_width = max(len(f"{stage}[{worker}]") for _, stage, worker in rows)
    for (_, stage, worker), cells in sorted(rows.items()):
        multi = sum(1 for k in rows if k[1] == stage) > 1
        name = f"{stage}[{worker}]" if multi else stage
        lines.append(f"{name:<{label_width}} |{''.join(cells)}")
    lines.append(
        f"{'':<{label_width}}  0{'-' * (width - 12)}{result.makespan * 1e3:.1f} ms"
    )
    util = result.breakdown_fractions()
    lines.append(
        f"{'':<{label_width}}  busy: "
        + ", ".join(f"{k} {v * 100:.0f}%" for k, v in util.items())
    )
    return "\n".join(lines)


@dataclass
class SpanSchedule:
    """A tracer-span timeline in the shape :func:`render_gantt` draws."""

    makespan: float
    timeline: list[TimelineEvent] = field(default_factory=list)
    stage_busy: dict = field(default_factory=dict)

    def breakdown_fractions(self) -> dict[str, float]:
        total = sum(self.stage_busy.values())
        if total <= 0:
            return {k: 0.0 for k in self.stage_busy}
        return {k: v / total for k, v in self.stage_busy.items()}


def schedule_from_spans(
    spans: Sequence, cats: Optional[set] = None
) -> SpanSchedule:
    """Map :class:`repro.obs.Span` objects onto a gantt timeline.

    Stage = the span's category, worker = an integer assigned per
    (stage, thread) in order of first appearance, sub-task label = the
    span's ``subtask`` arg.  ``cats`` filters which categories to draw
    (default: the pipeline stages read/compute/write).
    """
    cats = cats if cats is not None else {"read", "compute", "write"}
    picked = [s for s in spans if s.cat in cats]
    if not picked:
        return SpanSchedule(makespan=0.0)
    t0 = min(s.start for s in picked)
    workers: dict[tuple[str, str], int] = {}
    timeline: list[TimelineEvent] = []
    busy: dict[str, float] = {}
    for span in sorted(picked, key=lambda s: s.start):
        key = (span.cat, span.thread)
        if key not in workers:
            workers[key] = sum(1 for k in workers if k[0] == span.cat)
        timeline.append(
            TimelineEvent(
                index=int(span.args.get("subtask", 0)),
                stage=span.cat,
                start=span.start - t0,
                end=span.end - t0,
                worker=workers[key],
            )
        )
        busy[span.cat] = busy.get(span.cat, 0.0) + span.duration
    makespan = max(e.end for e in timeline)
    return SpanSchedule(makespan=makespan, timeline=timeline, stage_busy=busy)


def render_span_gantt(
    spans: Sequence, width: int = 72, cats: Optional[set] = None
) -> str:
    """ASCII gantt straight from tracer spans (see module docstring)."""
    return render_gantt(schedule_from_spans(spans, cats=cats), width=width)
