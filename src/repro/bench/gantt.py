"""ASCII Gantt rendering of simulated compaction schedules.

The paper explains PCP with timeline drawings (Figs 3, 4, 6, 7: which
sub-task occupies which resource when).  :func:`render_gantt` produces
the same picture from a :class:`~repro.core.backends.simbackend.ScheduleResult`
timeline, one row per (stage, worker), sub-tasks labelled 0-9a-z::

    read  |000111222333
    cpu   |...000111222333
    write |......000111222333

Useful in examples and docs; also a debugging aid for the scheduler.
"""

from __future__ import annotations

from ..core.backends.simbackend import ScheduleResult, TimelineEvent

__all__ = ["render_gantt"]

_STAGE_ORDER = {"read": 0, "compute": 1, "write": 2}
_LABELS = "0123456789abcdefghijklmnopqrstuvwxyz"


def _label(index: int) -> str:
    return _LABELS[index % len(_LABELS)]


def render_gantt(result: ScheduleResult, width: int = 72) -> str:
    """Render the schedule's timeline as fixed-width ASCII rows."""
    if not result.timeline or result.makespan <= 0:
        return "(empty schedule)"
    scale = (width - 1) / result.makespan

    # Rows keyed by (stage order, stage, worker).
    rows: dict[tuple[int, str, int], list[str]] = {}
    for ev in result.timeline:
        key = (_STAGE_ORDER.get(ev.stage, 9), ev.stage, ev.worker)
        rows.setdefault(key, [" "] * width)

    for ev in result.timeline:
        key = (_STAGE_ORDER.get(ev.stage, 9), ev.stage, ev.worker)
        row = rows[key]
        start = int(ev.start * scale)
        end = max(start + 1, int(ev.end * scale))
        for i in range(start, min(end, width)):
            row[i] = _label(ev.index)

    lines = []
    label_width = max(len(f"{stage}[{worker}]") for _, stage, worker in rows)
    for (_, stage, worker), cells in sorted(rows.items()):
        multi = sum(1 for k in rows if k[1] == stage) > 1
        name = f"{stage}[{worker}]" if multi else stage
        lines.append(f"{name:<{label_width}} |{''.join(cells)}")
    lines.append(
        f"{'':<{label_width}}  0{'-' * (width - 12)}{result.makespan * 1e3:.1f} ms"
    )
    util = result.breakdown_fractions()
    lines.append(
        f"{'':<{label_width}}  busy: "
        + ", ".join(f"{k} {v * 100:.0f}%" for k, v in util.items())
    )
    return "\n".join(lines)
