"""Extension experiment: write-pause (latency-tail) reduction.

Not a numbered figure, but the paper's own motivation (§I): compaction
speed bounds write pauses.  We insert a fixed workload under SCP and
PCP and compare the per-write virtual latency distribution — the p50
is the WAL+memtable cost and is identical, while the extreme tail is a
compaction pause and shrinks by roughly the compaction-bandwidth
factor under PCP.
"""

from __future__ import annotations

from ...core.procedures import ProcedureSpec
from ..latency import run_latency_workload
from .base import ExperimentResult
from .fig10 import SUBTASK_BYTES, pcp_spec_for

__all__ = ["run"]


def run(
    n: int = 15_000,
    device: str = "ssd",
    distribution: str = "uniform",
) -> ExperimentResult:
    specs = {
        "scp": ProcedureSpec.scp(subtask_bytes=SUBTASK_BYTES),
        "pcp": pcp_spec_for(device),
    }
    rows = []
    for label, spec in specs.items():
        result = run_latency_workload(
            n, spec, device=device, distribution=distribution
        )
        rows.append(
            [
                label,
                result.percentile(50),
                result.percentile(99),
                result.percentile(99.9),
                result.max_us,
                result.stalled_ops(threshold_us=1000.0),
            ]
        )
    return ExperimentResult(
        name=f"Write pauses ({device}): per-op virtual latency, SCP vs PCP",
        headers=["procedure", "p50 us", "p99 us", "p99.9 us", "max us",
                 "ops stalled >1ms"],
        rows=rows,
        notes=(
            "paper §I: compactions cause write pauses; pipelining shortens "
            "the pause tail by the compaction-bandwidth factor (p50 is the "
            "WAL+memtable path and is unchanged)"
        ),
    )
