"""Figure 11: compaction bandwidth vs sub-task size and compaction size.

(a) sub-task size 64 KB → 4 MB at a fixed 4 MB compaction (SSD):
    SCP bandwidth rises monotonically (bigger I/Os exploit SSD channel
    parallelism); PCP rises then falls — too few sub-tasks starve the
    pipeline — peaking at an intermediate size (512 KB in the paper).

(b) compaction size 1 → 10 MB at a fixed 1 MB sub-task (SSD):
    SCP is flat; PCP keeps improving until ~6 sub-tasks amortise the
    fill/drain cost, then saturates.
"""

from __future__ import annotations

from ...core.costmodel import CostModel
from ...core.procedures import ProcedureSpec, simulate_compaction, uniform_subtasks
from ...devices import make_device
from .base import ExperimentResult

__all__ = ["run_subtask_sweep", "run_compaction_sweep",
           "SUBTASK_SIZES", "COMPACTION_SIZES"]

MB = 1 << 20
SUBTASK_SIZES = tuple(64 * 1024 * (1 << i) for i in range(7))  # 64K..4M
COMPACTION_SIZES = tuple(m * MB for m in range(1, 11))  # 1M..10M


def _bandwidth(spec: ProcedureSpec, compaction_bytes: int, subtask_bytes: int,
               device: str, cost_model: CostModel | None) -> float:
    sizes = uniform_subtasks(compaction_bytes, subtask_bytes)
    dev = make_device(device)
    result = simulate_compaction(sizes, spec, cost_model, dev, dev)
    return result.bandwidth()


def run_subtask_sweep(
    device: str = "ssd",
    compaction_bytes: int = 4 * MB,
    subtask_sizes: tuple[int, ...] = SUBTASK_SIZES,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    rows = []
    for size in subtask_sizes:
        scp = _bandwidth(
            ProcedureSpec.scp(subtask_bytes=size),
            compaction_bytes, size, device, cost_model,
        )
        pcp = _bandwidth(
            ProcedureSpec.pcp(subtask_bytes=size),
            compaction_bytes, size, device, cost_model,
        )
        label = f"{size // 1024}K" if size < MB else f"{size // MB}M"
        rows.append([label, scp / 1e6, pcp / 1e6, pcp / scp])
    return ExperimentResult(
        name=f"Fig 11(a): bandwidth vs sub-task size ({device}, "
        f"{compaction_bytes // MB} MB compaction)",
        headers=["subtask", "scp MB/s", "pcp MB/s", "speedup"],
        rows=rows,
        notes="paper: scp rises monotonically; pcp peaks at 512K then falls",
    )


def run_compaction_sweep(
    device: str = "ssd",
    subtask_bytes: int = MB,
    compaction_sizes: tuple[int, ...] = COMPACTION_SIZES,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    rows = []
    for total in compaction_sizes:
        scp = _bandwidth(
            ProcedureSpec.scp(subtask_bytes=subtask_bytes),
            total, subtask_bytes, device, cost_model,
        )
        pcp = _bandwidth(
            ProcedureSpec.pcp(subtask_bytes=subtask_bytes),
            total, subtask_bytes, device, cost_model,
        )
        rows.append([total // MB, scp / 1e6, pcp / 1e6, pcp / scp])
    return ExperimentResult(
        name=f"Fig 11(b): bandwidth vs compaction size ({device}, "
        f"{subtask_bytes // MB} MB sub-tasks)",
        headers=["compaction MB", "scp MB/s", "pcp MB/s", "speedup"],
        rows=rows,
        notes="paper: scp flat; pcp grows until ~6 sub-tasks, then saturates",
    )
