"""Figure 10: system throughput (IOPS), compaction bandwidth, and
PCP/SCP speedups vs working-set size, on HDD and SSD.

Paper claims (scaled working sets here; 10M-80M entries there):

* IOPS decreases as the working set grows (deeper trees, more
  compaction work per byte) — both procedures, both devices.
* Compaction bandwidth sags slightly with size on HDD (seek aging) but
  stays flat on SSD.
* PCP improves IOPS by >=25 % (HDD) / >=45 % (SSD) and compaction
  bandwidth by >=45 % (HDD) / >=65 % (SSD).

Device-sharing model: on HDD the read and write stages contend for the
single arm (``shared_io=True``); on SSD channel parallelism lets reads
and writes overlap (``shared_io=False``).  See DESIGN.md.
"""

from __future__ import annotations

from ...core.procedures import ProcedureSpec
from ..runner import run_insert_workload, scaled_options
from .base import ExperimentResult

__all__ = ["run", "WORKING_SETS", "pcp_spec_for"]

WORKING_SETS = (10_000, 20_000, 40_000, 80_000)
SUBTASK_BYTES = 32 * 1024  # the paper's ~1 MB sub-task at 1/32 scale


def pcp_spec_for(device: str, **kw) -> ProcedureSpec:
    """PCP configured for the device's I/O concurrency semantics."""
    kw.setdefault("subtask_bytes", SUBTASK_BYTES)
    return ProcedureSpec.pcp(shared_io=(device == "hdd"), **kw)


def run(
    device: str = "ssd",
    working_sets: tuple[int, ...] = WORKING_SETS,
    distribution: str = "uniform",
) -> ExperimentResult:
    rows = []
    for n in working_sets:
        scp = run_insert_workload(
            n, ProcedureSpec.scp(subtask_bytes=SUBTASK_BYTES),
            device=device, options=scaled_options(), distribution=distribution,
        )
        pcp = run_insert_workload(
            n, pcp_spec_for(device),
            device=device, options=scaled_options(), distribution=distribution,
        )
        rows.append(
            [
                n,
                scp.iops,
                pcp.iops,
                pcp.iops / scp.iops if scp.iops else 0.0,
                scp.compaction_bandwidth / 1e6,
                pcp.compaction_bandwidth / 1e6,
                (
                    pcp.compaction_bandwidth / scp.compaction_bandwidth
                    if scp.compaction_bandwidth
                    else 0.0
                ),
            ]
        )
    return ExperimentResult(
        name=f"Fig 10 ({device}): IOPS / compaction bandwidth vs working set",
        headers=[
            "entries", "iops scp", "iops pcp", "iops x",
            "bw scp MB/s", "bw pcp MB/s", "bw x",
        ],
        rows=rows,
        notes=(
            "paper: iops falls with size; pcp/scp iops >= 1.25 (hdd) / 1.45 "
            "(ssd); bw >= 1.45 (hdd) / 1.65 (ssd); hdd bw sags with size, "
            "ssd bw flat"
        ),
    )
