"""Ablations of the design choices DESIGN.md calls out.

* pipeline depth — the paper argues (§III-B) for exactly three stages
  rather than splitting S2-S6 across CPUs; we model a deeper split as a
  chain of unevenly-sized compute stages with a per-hop hand-off cost.
* queue depth — the bounded inter-stage buffer controls fill/drain
  overhead (the ~10 % ideal-vs-practical gap).
* codec choice — moving CPU cost (null / lz77 / zlib-like) shifts the
  CPU-I/O balance and with it the PCP gain and the S-PPCP knee.
* shared vs independent I/O servers — the Eq 2 assumption.
"""

from __future__ import annotations

from ...core.backends.simbackend import PipelineConfig, SimJob, simulate_pipeline
from ...core.costmodel import CostModel
from ...core.procedures import ProcedureSpec, simulate_compaction, uniform_subtasks
from ...devices import make_device
from ...sim import Resource, Simulator, Store, StoreClosed
from .base import ExperimentResult

__all__ = [
    "run_codec_ablation",
    "run_depth_ablation",
    "run_distribution_ablation",
    "run_queue_ablation",
    "run_shared_io_ablation",
]

MB = 1 << 20


# --------------------------------------------------------------- depth
def _simulate_deep_pipeline(
    jobs: list[SimJob],
    compute_splits: list[float],
    hop_overhead_s: float,
    queue_capacity: int = 2,
) -> float:
    """A pipeline whose compute stage is split into serial sub-stages.

    Each sub-stage gets ``split`` of the compute time plus a hand-off
    cost per sub-task; stages run on distinct workers connected by
    bounded queues — the §III-B alternative the paper rejects.
    Returns the makespan.
    """
    sim = Simulator()
    n_stages = len(compute_splits)
    stores = [Store(sim, queue_capacity, f"q{i}") for i in range(n_stages + 1)]
    read_res = Resource(sim, 1, "disk.read")
    write_res = Resource(sim, 1, "disk.write")

    def reader():
        for job in jobs:
            yield from read_res.acquire(job.times.t_read)
            yield stores[0].put(job)
        stores[0].close()

    def compute_stage(i: int):
        frac = compute_splits[i]
        while True:
            try:
                job = yield stores[i].get()
            except StoreClosed:
                stores[i + 1].close()
                return
            yield sim.timeout(job.times.t_compute * frac + hop_overhead_s)
            yield stores[i + 1].put(job)

    def writer():
        while True:
            try:
                job = yield stores[n_stages].get()
            except StoreClosed:
                return
            yield from write_res.acquire(job.times.t_write)

    sim.process(reader())
    for i in range(n_stages):
        sim.process(compute_stage(i))
    sim.process(writer())
    return sim.run()


def run_depth_ablation(
    n_subtasks: int = 16,
    subtask_bytes: int = MB,
    hop_overhead_s: float = 0.0015,
) -> ExperimentResult:
    """§III-B/C's actual choice: given k cores for S2-S6, *widen* the
    single compute stage (C-PPCP) rather than *deepen* the pipeline.

    A deep split's throughput is bounded by its largest indivisible
    step (S5 compress) plus a hand-off cost per hop, and the uneven
    step times leave most sub-stages idle; C-PPCP gives each core a
    whole sub-task's compute, which divides perfectly.
    """
    cm = CostModel()
    dev = make_device("ssd")
    entries = cm.entries_for(subtask_bytes)
    steps = cm.step_times(subtask_bytes, entries, dev, dev)
    jobs = [SimJob(i, steps.stages(), subtask_bytes) for i in range(n_subtasks)]
    total_bytes = n_subtasks * subtask_bytes

    base = simulate_pipeline(jobs, PipelineConfig(queue_capacity=2))
    base_bw = total_bytes / base.makespan
    rows = [["3-stage pcp (1 core)", 1, base_bw / 1e6, 1.0]]

    c = steps.compute_total
    deep_splits = {
        "2-deep even split": [0.5, 0.5],
        "3-deep even split": [1 / 3, 1 / 3, 1 / 3],
        "5-deep per-step": [
            steps.checksum / c, steps.decompress / c, steps.merge / c,
            steps.compress / c, steps.rechecksum / c,
        ],
    }
    wide = {2: "c-ppcp k=2", 3: "c-ppcp k=3", 5: "c-ppcp k=5"}
    for (label, fracs), (k, wlabel) in zip(deep_splits.items(), wide.items()):
        deep_makespan = _simulate_deep_pipeline(jobs, fracs, hop_overhead_s)
        deep_bw = total_bytes / deep_makespan
        rows.append([label, k, deep_bw / 1e6, deep_bw / base_bw])
        wide_res = simulate_pipeline(
            jobs, PipelineConfig(compute_workers=k, queue_capacity=2 * k)
        )
        wide_bw = total_bytes / wide_res.makespan
        rows.append([wlabel, k, wide_bw / 1e6, wide_bw / base_bw])
    return ExperimentResult(
        name="Ablation: deepen the pipeline vs widen the compute stage "
        "(SSD, 1 MB sub-tasks, equal core budget)",
        headers=["design", "cores", "bw MB/s", "vs 1-core pcp"],
        rows=rows,
        notes=(
            "paper §III-B/C: at the same core count, C-PPCP's single wide "
            "stage beats splitting S2-S6 into sub-stages (uneven step "
            "times + per-hop hand-off cost bound the deep design)"
        ),
    )


# --------------------------------------------------------------- queue
def run_queue_ablation(
    n_subtasks: int = 24, subtask_bytes: int = MB
) -> ExperimentResult:
    """Bounded inter-stage buffering under sub-task size *jitter*.

    With perfectly uniform sub-tasks the bottleneck stage is never
    starved and queue depth is irrelevant; real compactions produce
    ragged sub-tasks (block-grid alignment, key skew), and then a
    deeper buffer absorbs the variance.  Sizes here cycle through
    1/4x..2x of the nominal sub-task.
    """
    cm = CostModel()
    pattern = (
        subtask_bytes // 4,
        2 * subtask_bytes,
        subtask_bytes,
        subtask_bytes // 2,
        2 * subtask_bytes,
        subtask_bytes // 4,
    )
    sizes = [
        (s, cm.entries_for(s)) for s in
        (pattern[i % len(pattern)] for i in range(n_subtasks))
    ]
    rows = []
    base = None
    for qcap in (1, 2, 4, 8):
        spec = ProcedureSpec.pcp(subtask_bytes=subtask_bytes, queue_capacity=qcap)
        bw = simulate_compaction(sizes, spec, cm, make_device("ssd"), None).bandwidth()
        if base is None:
            base = bw
        rows.append([qcap, bw / 1e6, bw / base])
    return ExperimentResult(
        name="Ablation: inter-stage queue capacity (SSD, ragged sub-tasks)",
        headers=["queue cap", "bw MB/s", "vs cap=1"],
        rows=rows,
        notes="deeper buffering absorbs sub-task jitter, with diminishing returns",
    )


# --------------------------------------------------------------- codec
def run_codec_ablation(
    n_subtasks: int = 16, subtask_bytes: int = MB
) -> ExperimentResult:
    """Codec cost scales move the CPU/I-O balance.

    `null` zeroes S3/S5 (I/O-bound even on SSD: little PCP gain beyond
    overlapping reads with writes); heavier codecs deepen the CPU
    bottleneck and raise S-PPCP's saturation k*.
    """
    from ...core.analytical import classify, sppcp_saturation_k

    rows = []
    for label, comp_scale in (("null", 0.0), ("lz77 (default)", 1.0),
                              ("zlib-like 2x", 2.0)):
        cm = CostModel(
            compress_s_per_byte=CostModel().compress_s_per_byte * comp_scale,
            decompress_s_per_byte=CostModel().decompress_s_per_byte * comp_scale,
        )
        dev = make_device("ssd")
        times = cm.step_times(subtask_bytes, cm.entries_for(subtask_bytes), dev, dev)
        sizes = uniform_subtasks(n_subtasks * subtask_bytes, subtask_bytes)
        scp = simulate_compaction(
            sizes, ProcedureSpec.scp(subtask_bytes=subtask_bytes), cm,
            make_device("ssd"), None,
        ).bandwidth()
        pcp = simulate_compaction(
            sizes, ProcedureSpec.pcp(subtask_bytes=subtask_bytes), cm,
            make_device("ssd"), None,
        ).bandwidth()
        rows.append(
            [label, classify(times), scp / 1e6, pcp / 1e6, pcp / scp,
             sppcp_saturation_k(times) if times.compute_total > 0 else 0]
        )
    return ExperimentResult(
        name="Ablation: codec CPU cost (SSD)",
        headers=["codec", "bound", "scp MB/s", "pcp MB/s", "speedup", "sppcp k*"],
        rows=rows,
        notes="compression cost controls which resource bounds the pipeline",
    )


# ----------------------------------------------------------- shared io
def run_shared_io_ablation(
    n_subtasks: int = 16, subtask_bytes: int = MB
) -> ExperimentResult:
    cm = CostModel()
    sizes = uniform_subtasks(n_subtasks * subtask_bytes, subtask_bytes)
    rows = []
    for device in ("hdd", "ssd"):
        for shared in (False, True):
            spec = ProcedureSpec.pcp(subtask_bytes=subtask_bytes, shared_io=shared)
            dev = make_device(device)
            bw = simulate_compaction(sizes, spec, cm, dev, dev).bandwidth()
            rows.append([f"{device} shared={shared}", bw / 1e6])
    return ExperimentResult(
        name="Ablation: Eq 2's independent read/write servers vs one device",
        headers=["case", "pcp bw MB/s"],
        rows=rows,
        notes=(
            "Eq 2 treats t1 and t7 as parallel; with one contended server "
            "the bottleneck becomes t1+t7 — the realistic HDD case"
        ),
    )


# -------------------------------------------------------- distribution
def run_distribution_ablation(n: int = 8000) -> ExperimentResult:
    """Key-arrival order decides how much *real* merging compaction does.

    Sequential loads produce non-overlapping runs that LevelDB (and we)
    move down without reading — SCP vs PCP is then irrelevant; uniform
    and zipfian arrivals overlap every flush and pay full merges, which
    is where the pipeline earns its keep.  (The paper's insert-only
    workloads are key-random; this ablation shows why that matters.)
    """
    from ...core.procedures import ProcedureSpec
    from ..runner import run_insert_workload, scaled_options

    rows = []
    for dist in ("sequential", "uniform", "zipfian"):
        scp = run_insert_workload(
            n, ProcedureSpec.scp(subtask_bytes=32 * 1024),
            device="ssd", options=scaled_options(), distribution=dist,
        )
        pcp = run_insert_workload(
            n, ProcedureSpec.pcp(subtask_bytes=32 * 1024),
            device="ssd", options=scaled_options(), distribution=dist,
        )
        rows.append(
            [
                dist,
                scp.n_compactions,
                scp.compaction_input_bytes / 1e6,
                scp.iops,
                pcp.iops,
                pcp.iops / scp.iops if scp.iops else 0.0,
            ]
        )
    return ExperimentResult(
        name="Ablation: key-arrival distribution (SSD, insert-only)",
        headers=["distribution", "merges", "merged MB", "iops scp",
                 "iops pcp", "iops x"],
        rows=rows,
        notes=(
            "sequential loads trivially move files (no merge work, no "
            "PCP gain); random arrivals pay full merges and benefit"
        ),
    )
