"""Experiment drivers, one module per paper figure/table."""

from . import (
    ablations,
    fig05,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    headline,
    model_validation,
    write_pauses,
)
from .base import ExperimentResult

__all__ = [
    "ExperimentResult",
    "ablations",
    "fig05",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "headline",
    "model_validation",
    "write_pauses",
]
