"""The paper's headline numbers (§I / §VI).

"Compared with LevelDB, the pipelined compaction procedure increases
the compaction bandwidth by 77 % and improves the throughput by 62 %.
The parallel pipelined compaction procedure improves the compaction
bandwidth and throughput by 89 % and 64 % respectively."

We reproduce the comparison on the calibrated SSD (the favourable
case): a large compaction with 1024 B entries (the paper's best
operating point, where merge work per byte is low and the three stages
are closest to balanced) for bandwidth, and the system insert workload
for throughput.
"""

from __future__ import annotations

from ...core.procedures import ProcedureSpec, simulate_compaction, uniform_subtasks
from ...devices import make_device
from ..runner import run_insert_workload, scaled_options
from .base import ExperimentResult
from .fig10 import SUBTASK_BYTES, pcp_spec_for

__all__ = ["run"]

MB = 1 << 20


def run(
    kv_bytes: int = 1024,
    compaction_bytes: int = 32 * MB,
    subtask_bytes: int = MB,
    system_entries: int = 20_000,
) -> ExperimentResult:
    dev_kind = "ssd"
    sizes = uniform_subtasks(compaction_bytes, subtask_bytes, kv_bytes)

    def bw(spec) -> float:
        dev = make_device(dev_kind)
        return simulate_compaction(sizes, spec, None, dev, dev).bandwidth()

    bw_scp = bw(ProcedureSpec.scp(subtask_bytes=subtask_bytes))
    bw_pcp = bw(ProcedureSpec.pcp(subtask_bytes=subtask_bytes))
    bw_cppcp = bw(
        ProcedureSpec.cppcp(k=2, subtask_bytes=subtask_bytes, queue_capacity=4)
    )

    scp_sys = run_insert_workload(
        system_entries, ProcedureSpec.scp(subtask_bytes=SUBTASK_BYTES),
        device=dev_kind, options=scaled_options(), value_bytes=kv_bytes - 16,
    )
    pcp_sys = run_insert_workload(
        system_entries, pcp_spec_for(dev_kind),
        device=dev_kind, options=scaled_options(), value_bytes=kv_bytes - 16,
    )
    cppcp_sys = run_insert_workload(
        system_entries,
        ProcedureSpec.cppcp(k=2, subtask_bytes=SUBTASK_BYTES, queue_capacity=4),
        device=dev_kind, options=scaled_options(), value_bytes=kv_bytes - 16,
    )

    rows = [
        ["scp (LevelDB)", bw_scp / 1e6, 1.0, scp_sys.iops, 1.0],
        ["pcp", bw_pcp / 1e6, bw_pcp / bw_scp, pcp_sys.iops,
         pcp_sys.iops / scp_sys.iops],
        ["c-ppcp k=2", bw_cppcp / 1e6, bw_cppcp / bw_scp, cppcp_sys.iops,
         cppcp_sys.iops / scp_sys.iops],
    ]
    return ExperimentResult(
        name="Headline: compaction bandwidth and system throughput vs SCP (SSD)",
        headers=["procedure", "bw MB/s", "bw x", "iops", "iops x"],
        rows=rows,
        notes="paper: pcp +77% bw / +62% iops; ppcp +89% bw / +64% iops",
    )
