"""Figure 5: SCP execution-time breakdown into read/compute/write.

Paper claims: on HDD, step read takes >40 % and read+write >60 % of
compaction time (disk-bound); on SSD, the computation steps take >60 %
and write costs more than read (CPU-bound).
"""

from __future__ import annotations

from ...core.costmodel import DEFAULT_KV_BYTES, CostModel
from ..profiling import breakdown3, profile_steps_model
from .base import ExperimentResult

__all__ = ["run"]


def run(
    subtask_bytes: int = 1 << 20,
    kv_bytes: int = DEFAULT_KV_BYTES,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    rows = []
    for device in ("hdd", "ssd"):
        times = profile_steps_model(subtask_bytes, kv_bytes, device, cost_model)
        frac = breakdown3(times)
        rows.append(
            [
                device,
                frac["read"] * 100,
                frac["compute"] * 100,
                frac["write"] * 100,
                (frac["read"] + frac["write"]) * 100,
            ]
        )
    return ExperimentResult(
        name="Fig 5: SCP time breakdown (percent of sub-task time)",
        headers=["device", "read%", "compute%", "write%", "io%"],
        rows=rows,
        notes=(
            "paper: HDD read>40, io>60 (disk-bound); "
            "SSD compute>60, write>read (CPU-bound)"
        ),
    )
