"""Figure 12: parallel pipelined compaction — S-PPCP and C-PPCP.

(a-c) S-PPCP on HDD: bandwidth/IOPS rise with the disk count until the
pipeline turns CPU-bound (paper: ~5 disks), then flatten.  Small
sub-tasks (seek-dominated reads) are where extra spindles pay off, so
this sweep uses 128 KB sub-tasks.

(d-f) C-PPCP on SSD: one extra compute thread helps; past the
saturation point the pipeline is I/O-bound and thread synchronisation
overhead makes *more* threads slightly worse (paper: "the throughput
and the compaction bandwidth decrease... due to the overhead of
creation and synchronization of multiple threads"), modelled by the
serialized queue-handoff cost.
"""

from __future__ import annotations

from ...core.analytical import sppcp_saturation_k
from ...core.costmodel import CostModel
from ...core.procedures import ProcedureSpec, simulate_compaction, uniform_subtasks
from ...devices import make_device
from .base import ExperimentResult

__all__ = ["run_sppcp", "run_cppcp", "DISK_COUNTS", "THREAD_COUNTS"]

MB = 1 << 20
DISK_COUNTS = (1, 2, 3, 4, 5, 6, 8, 10)
THREAD_COUNTS = (1, 2, 3, 4, 6, 8)

SPPCP_SUBTASK = 160 * 1024
CPPCP_SUBTASK = 1 * MB
#: serialized per-handoff synchronisation cost (calibrated to yield the
#: paper's decline past saturation).
HANDOFF_S = 0.0025


def run_sppcp(
    compaction_bytes: int = 8 * MB,
    disk_counts: tuple[int, ...] = DISK_COUNTS,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    sizes = uniform_subtasks(compaction_bytes, SPPCP_SUBTASK)
    rows = []
    base = None
    for k in disk_counts:
        if k == 1:
            spec = ProcedureSpec.pcp(subtask_bytes=SPPCP_SUBTASK, shared_io=True)
        else:
            spec = ProcedureSpec.sppcp(
                k=k, subtask_bytes=SPPCP_SUBTASK, shared_io=True
            )
        dev = make_device("hdd")
        result = simulate_compaction(sizes, spec, cost_model, dev, dev)
        bw = result.bandwidth()
        if base is None:
            base = bw
        rows.append([k, bw / 1e6, bw / base])
    # Where the analytical model says scaling stops:
    cm = cost_model or CostModel()
    dev = make_device("hdd")
    t = cm.step_times(SPPCP_SUBTASK, cm.entries_for(SPPCP_SUBTASK), dev, dev)
    k_star = sppcp_saturation_k(t)
    return ExperimentResult(
        name="Fig 12(a-c): S-PPCP on HDD — bandwidth vs disk count "
        f"(160 KB sub-tasks; model saturation k*={k_star})",
        headers=["disks", "bw MB/s", "speedup vs 1"],
        rows=rows,
        notes="paper: gains until ~5 disks, then CPU-bound and flat",
    )


def run_cppcp(
    compaction_bytes: int = 16 * MB,
    thread_counts: tuple[int, ...] = THREAD_COUNTS,
    handoff_s: float = HANDOFF_S,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    sizes = uniform_subtasks(compaction_bytes, CPPCP_SUBTASK)
    rows = []
    base = None
    for k in thread_counts:
        if k == 1:
            spec = ProcedureSpec.pcp(subtask_bytes=CPPCP_SUBTASK)
        else:
            spec = ProcedureSpec.cppcp(
                k=k, subtask_bytes=CPPCP_SUBTASK, queue_capacity=2 * k,
                handoff_overhead_s=handoff_s,
            )
        dev = make_device("ssd")
        result = simulate_compaction(sizes, spec, cost_model, dev, dev)
        bw = result.bandwidth()
        if base is None:
            base = bw
        rows.append([k, bw / 1e6, bw / base])
    return ExperimentResult(
        name="Fig 12(d-f): C-PPCP on SSD — bandwidth vs compute threads",
        headers=["threads", "bw MB/s", "speedup vs 1"],
        rows=rows,
        notes=(
            "paper: +1 thread helps, then I/O-bound; further threads "
            "decline from synchronisation overhead"
        ),
    )
