"""Common shape for experiment drivers.

Each ``figNN`` module exposes ``run(...) -> ExperimentResult``; the
benchmarks call it, print ``render()``, and assert the paper's
qualitative claims against ``rows``.  EXPERIMENTS.md records the
paper-reported vs measured values per experiment id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..report import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    name: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    notes: str = ""

    def render(self) -> str:
        out = format_table(self.headers, self.rows, title=f"== {self.name} ==")
        if self.notes:
            out += f"\n{self.notes}"
        return out

    def column(self, header: str) -> list[Any]:
        idx = list(self.headers).index(header)
        return [row[idx] for row in self.rows]

    def row_map(self, key_header: str) -> dict[Any, Sequence[Any]]:
        idx = list(self.headers).index(key_header)
        return {row[idx]: row for row in self.rows}
