"""Figure 8: seven-step breakdown vs key-value size (64 B - 1024 B).

Paper claims: as the key-value size increases, step *sort* takes less
time (fewer entries per byte); *crc*/*re-crc* stay <5 % each; *decomp*
is the cheapest computation step and *comp* almost the most costly.
"""

from __future__ import annotations

from ...core.costmodel import CostModel
from ..profiling import profile_steps_model
from .base import ExperimentResult

__all__ = ["run", "KV_SIZES"]

KV_SIZES = (64, 128, 256, 512, 1024)


def run(
    device: str = "ssd",
    subtask_bytes: int = 1 << 20,
    kv_sizes: tuple[int, ...] = KV_SIZES,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    rows = []
    for kv in kv_sizes:
        t = profile_steps_model(subtask_bytes, kv, device, cost_model)
        total = t.total
        rows.append(
            [
                kv,
                t.read / total * 100,
                t.checksum / total * 100,
                t.decompress / total * 100,
                t.merge / total * 100,
                t.compress / total * 100,
                t.rechecksum / total * 100,
                t.write / total * 100,
            ]
        )
    return ExperimentResult(
        name=f"Fig 8: step breakdown vs key-value size on {device} (percent)",
        headers=["kv_bytes", "read%", "crc%", "decomp%", "sort%", "comp%",
                 "re-crc%", "write%"],
        rows=rows,
        notes="paper: sort% falls with kv size; crc/re-crc < 5% each",
    )
