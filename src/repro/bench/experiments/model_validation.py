"""Equations 1-7 vs the simulated schedules.

The paper's §III derives ideal bandwidths; §IV-C observes that "the
practical compaction bandwidth speedup is lower by about 10 %... due to
the overhead of the pipeline compaction procedure filling and
draining".  This experiment quantifies exactly that gap on our
schedules for every procedure and both device presets.
"""

from __future__ import annotations

from ...core.analytical import (
    cppcp_bandwidth,
    pcp_bandwidth,
    scp_bandwidth,
    sppcp_bandwidth,
)
from ...core.costmodel import CostModel
from ...core.procedures import ProcedureSpec, simulate_compaction, uniform_subtasks
from ...devices import make_device
from .base import ExperimentResult

__all__ = ["run"]

MB = 1 << 20


def run(
    n_subtasks: int = 16,
    subtask_bytes: int = MB,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    cm = cost_model or CostModel()
    sizes = uniform_subtasks(n_subtasks * subtask_bytes, subtask_bytes)
    rows = []
    for device in ("hdd", "ssd"):
        probe = make_device(device)
        times = cm.step_times(
            subtask_bytes, cm.entries_for(subtask_bytes), probe, probe
        )
        cases = [
            ("scp", ProcedureSpec.scp(subtask_bytes=subtask_bytes),
             scp_bandwidth(subtask_bytes, times)),
            ("pcp", ProcedureSpec.pcp(subtask_bytes=subtask_bytes),
             pcp_bandwidth(subtask_bytes, times)),
            ("sppcp k=2",
             ProcedureSpec.sppcp(k=2, subtask_bytes=subtask_bytes),
             sppcp_bandwidth(subtask_bytes, times, 2)),
            ("cppcp k=2",
             ProcedureSpec.cppcp(k=2, subtask_bytes=subtask_bytes,
                                 queue_capacity=4),
             cppcp_bandwidth(subtask_bytes, times, 2)),
        ]
        for label, spec, ideal in cases:
            dev = make_device(device)
            measured = simulate_compaction(sizes, spec, cm, dev, dev).bandwidth()
            rows.append(
                [
                    f"{device}/{label}",
                    ideal / 1e6,
                    measured / 1e6,
                    measured / ideal * 100,
                ]
            )
    return ExperimentResult(
        name="Eqs 1-7: ideal vs simulated bandwidth",
        headers=["case", "ideal MB/s", "simulated MB/s", "sim/ideal %"],
        rows=rows,
        notes=(
            "paper: practical speedup ~10% below ideal (pipeline fill/drain);"
            " SCP matches Eq 1 exactly"
        ),
    )
