"""Figure 9: seven-step breakdown vs sub-task size (64 KB - 4 MB).

Paper claims: the per-byte cost of step *write* falls as the sub-task
grows ("larger I/O size can exploit the internal parallelism of SSD
and increase the bandwidth of HDD"); on HDD, read dominates at every
size because each sub-task pays a positioning cost.
"""

from __future__ import annotations

from ...core.costmodel import DEFAULT_KV_BYTES, CostModel
from ..profiling import profile_steps_model
from .base import ExperimentResult

__all__ = ["run", "SUBTASK_SIZES"]

SUBTASK_SIZES = tuple(64 * 1024 * (1 << i) for i in range(7))  # 64K..4M


def run(
    device: str = "ssd",
    kv_bytes: int = DEFAULT_KV_BYTES,
    subtask_sizes: tuple[int, ...] = SUBTASK_SIZES,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    rows = []
    for size in subtask_sizes:
        t = profile_steps_model(size, kv_bytes, device, cost_model)
        total = t.total
        mb = size / (1 << 20)
        rows.append(
            [
                f"{size // 1024}K" if size < (1 << 20) else f"{size >> 20}M",
                t.read / total * 100,
                t.compute_total / total * 100,
                t.write / total * 100,
                t.read / mb * 1e3,  # ms per MB: amortisation visible
                t.write / mb * 1e3,
            ]
        )
    return ExperimentResult(
        name=f"Fig 9: step breakdown vs sub-task size on {device}",
        headers=["subtask", "read%", "compute%", "write%", "read ms/MB",
                 "write ms/MB"],
        rows=rows,
        notes="paper: write (and read) per-byte cost falls as sub-task grows",
    )
