"""Step-time profiling: the data behind Figures 5, 8, and 9.

Two profilers:

* :func:`profile_steps_model` — deterministic per-step times from the
  cost model + device presets (what the quantitative figures use).
* :func:`profile_steps_real` — build a real compaction input in memory
  and wall-clock each of the seven steps of the actual implementation
  (ties the model to the code; the *relative* CPU-step ordering should
  match the model's).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..codec.checksum import get_checksummer
from ..codec.compress import get_codec
from ..core.backends.threadbackend import run_subtask_read
from ..core.costmodel import DEFAULT_KV_BYTES, CostModel, StepTimes
from ..core.steps import (
    step_checksum,
    step_compress,
    step_decompress,
    step_merge,
    step_rechecksum,
)
from ..core.subtask import partition_subtasks
from ..devices import MemStorage, make_device
from ..lsm.ikey import KIND_VALUE, encode_internal_key
from ..lsm.options import Options
from ..lsm.table_builder import TableBuilder
from ..lsm.table_reader import Table
from ..workload.generators import ValueGenerator

__all__ = ["profile_steps_model", "profile_steps_real", "breakdown3"]


def profile_steps_model(
    subtask_bytes: int = 1 << 20,
    kv_bytes: int = DEFAULT_KV_BYTES,
    device: str = "ssd",
    cost_model: CostModel | None = None,
) -> StepTimes:
    """S1..S7 service times for one sub-task under the model."""
    cm = cost_model or CostModel()
    dev = make_device(device)
    entries = cm.entries_for(subtask_bytes, kv_bytes)
    return cm.step_times(subtask_bytes, entries, dev, dev)


def breakdown3(times: StepTimes) -> dict[str, float]:
    """Collapse S1..S7 shares into read/compute/write fractions."""
    total = times.total
    return {
        "read": times.read / total,
        "compute": times.compute_total / total,
        "write": times.write / total,
    }


@dataclass
class RealStepProfile:
    """Wall-clock seconds per step over a real sub-task's data."""

    times: StepTimes
    input_bytes: int
    entries: int

    def fractions(self) -> dict[str, float]:
        total = self.times.total
        return {k: v / total for k, v in self.times.as_dict().items()}


def profile_steps_real(
    subtask_bytes: int = 256 * 1024,
    kv_bytes: int = DEFAULT_KV_BYTES,
    compression: str = "lz77",
    repeats: int = 1,
) -> RealStepProfile:
    """Time the actual seven-step implementation on synthetic tables.

    S1/S7 run against in-memory storage, so their absolute times are
    meaningless (DRAM speed); the CPU steps S2-S6 are the interesting
    part and the reason the paper's SSD profile is compute-bound.
    """
    value_bytes = max(1, kv_bytes - 16)
    options = Options(compression=compression, block_bytes=4096)
    storage = MemStorage()
    values = ValueGenerator(value_bytes)

    n_entries = max(16, subtask_bytes // kv_bytes)
    def build(name, start, step, seq):
        with storage.create(name) as f:
            builder = TableBuilder(f, options)
            for i in range(start, start + n_entries * step, step):
                key = encode_internal_key(b"%016d" % i, seq, KIND_VALUE)
                builder.add(key, values.value_for(i))
            builder.finish()
        return Table(storage.open(name), options)

    upper = build("u.sst", 0, 2, seq=9)
    lower = build("l.sst", 1, 2, seq=1)
    subtasks = partition_subtasks([upper, lower], subtask_bytes=1 << 40)
    assert len(subtasks) == 1
    subtask = subtasks[0]
    codec = get_codec(compression)
    checksummer = get_checksummer(options.checksum)

    acc = dict.fromkeys(
        ("read", "checksum", "decompress", "merge", "compress", "rechecksum",
         "write"), 0.0,
    )
    input_bytes = subtask.input_bytes()
    out_entries = 0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        stored = run_subtask_read(subtask)
        t1 = time.perf_counter()
        step_checksum(stored, checksummer)
        t2 = time.perf_counter()
        raw = step_decompress(stored)
        t3 = time.perf_counter()
        merged = step_merge(raw, None, None, options.block_bytes,
                            n_sources=len(subtask.runs))
        t4 = time.perf_counter()
        compressed = step_compress(merged, codec)
        t5 = time.perf_counter()
        encoded = step_rechecksum(compressed, checksummer)
        t6 = time.perf_counter()
        sink_file = storage.create("out.run")
        for block in encoded:
            sink_file.append(block.stored)
        sink_file.close()
        t7 = time.perf_counter()
        acc["read"] += t1 - t0
        acc["checksum"] += t2 - t1
        acc["decompress"] += t3 - t2
        acc["merge"] += t4 - t3
        acc["compress"] += t5 - t4
        acc["rechecksum"] += t6 - t5
        acc["write"] += t7 - t6
        out_entries = sum(b.num_entries for b in encoded)
    r = max(1, repeats)
    times = StepTimes(**{k: v / r for k, v in acc.items()})
    return RealStepProfile(times=times, input_bytes=input_bytes, entries=out_entries)
