"""Per-operation latency accounting: write pauses under compaction.

The paper's motivation (§I): "Slow data movements incur write pauses.
That is, the storage system can not serve updates any more until the
background compaction completes."  Faster compaction therefore doesn't
just raise throughput — it shortens the tail of the write-latency
distribution.

:class:`LatencyClock` extends the virtual-clock observer idea to the
per-operation level: each write's virtual latency is its own
foreground cost **plus** any flush/compaction work it synchronously
triggered (the serial engine model charges the pause to the op that
caused it, which is exactly how a single-writer LSM behaves at the
stall point).  The result is a latency distribution whose tail is the
compaction pause — and whose tail shrinks by the compaction-bandwidth
factor when the procedure is pipelined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.costmodel import CostModel
from ..core.procedures import ProcedureSpec
from ..db.db import DB
from ..devices import MemStorage
from ..lsm.options import Options
from ..workload.generators import InsertWorkload
from .observer import VirtualClock

__all__ = ["LatencyClock", "LatencyResult", "run_latency_workload"]


class LatencyClock(VirtualClock):
    """VirtualClock that also attributes latency to individual writes."""

    def __init__(self, **kw) -> None:
        super().__init__(**kw)
        self.latencies: list[float] = []
        self._op_accum = 0.0

    # Each DB.put triggers exactly one on_write; flush/compaction hooks
    # fire *inside* that same put when thresholds trip, so accumulating
    # between on_write calls attributes the pause to the op that paid it.
    def on_write(self, batch, wal_bytes: int) -> None:
        before = self.total_s
        super().on_write(batch, wal_bytes)
        self._op_accum += self.total_s - before
        self.latencies.append(self._op_accum)
        self._op_accum = 0.0

    def on_flush(self, meta) -> None:
        before = self.total_s
        super().on_flush(meta)
        self._op_accum += self.total_s - before

    def on_trivial_move(self, task) -> None:
        before = self.total_s
        super().on_trivial_move(task)
        self._op_accum += self.total_s - before

    def on_compaction(self, task, subtasks, stats) -> None:
        before = self.total_s
        super().on_compaction(task, subtasks, stats)
        self._op_accum += self.total_s - before


@dataclass
class LatencyResult:
    """Latency distribution of one run (virtual microseconds)."""

    spec: ProcedureSpec
    n_ops: int
    latencies_us: list[float] = field(repr=False, default_factory=list)

    def percentile(self, p: float) -> float:
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        idx = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[idx]

    @property
    def mean_us(self) -> float:
        return sum(self.latencies_us) / len(self.latencies_us)

    @property
    def max_us(self) -> float:
        return max(self.latencies_us)

    def stalled_ops(self, threshold_us: float = 1000.0) -> int:
        """Writes that paused longer than ``threshold_us``."""
        return sum(1 for v in self.latencies_us if v >= threshold_us)


def run_latency_workload(
    n: int,
    spec: ProcedureSpec,
    device: str = "ssd",
    options: Optional[Options] = None,
    distribution: str = "uniform",
    value_bytes: int = 100,
    seed: int = 0,
) -> LatencyResult:
    """Insert ``n`` entries, recording each write's virtual latency."""
    from .runner import SCALE, scaled_device, scaled_options

    options = options or scaled_options()
    dev = scaled_device(device)
    clock = LatencyClock(
        spec=spec,
        read_device=dev,
        write_device=dev,
        cost_model=CostModel(),
        kv_bytes=16 + value_bytes,
        maintenance_per_compaction_s=0.004 / SCALE,
        trivial_move_s=0.0005 / SCALE,
        memtable_insert_s=2.0e-6 / SCALE,
    )
    db = DB(MemStorage(), options, compaction_spec=spec, observer=clock)
    try:
        InsertWorkload(
            n=n, distribution=distribution, value_bytes=value_bytes, seed=seed
        ).apply_to(db)
    finally:
        db.close()
    return LatencyResult(
        spec=spec,
        n_ops=n,
        latencies_us=[v * 1e6 for v in clock.latencies],
    )
