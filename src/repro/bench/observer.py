"""Virtual-time accounting for system-level experiments (Figs 10, 12).

CPython's GIL prevents a threaded pure-Python build from demonstrating
the CPU/I-O overlap the paper measures, so the system experiments run
the *functional* engine (real merges, real files in memory) while a
:class:`VirtualClock` observer attributes deterministic virtual seconds
to every event:

* foreground writes: WAL append (sequential device write) + per-entry
  memtable insertion CPU,
* memtable dumps: table build CPU + sequential write,
* compactions: the DES-simulated makespan of the configured procedure
  over the compaction's actual sub-task sizes — this is where SCP vs
  PCP vs PPCP differ,
* a fixed per-compaction maintenance overhead (the paper's "database
  consistence maintaining, garbage collecting and other operations
  which are not pipelined", the reason throughput gains trail
  bandwidth gains by ~20 %).

Total virtual time = foreground + flush + compaction + maintenance;
IOPS = ops / total.  Everything is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.backends.simbackend import simulate_pipeline, simulate_scp
from ..core.costmodel import DEFAULT_KV_BYTES, CostModel
from ..core.procedures import SCP, ProcedureSpec, subtask_jobs
from ..devices.base import AccessKind, Device

__all__ = ["VirtualClock"]


@dataclass
class VirtualClock:
    """DB observer that accumulates virtual seconds per activity."""

    spec: ProcedureSpec
    read_device: Device
    write_device: Device
    cost_model: CostModel = field(default_factory=CostModel)
    kv_bytes: int = DEFAULT_KV_BYTES
    #: CPU cost of one memtable (skiplist) insertion.
    memtable_insert_s: float = 2.0e-6
    #: unpipelined bookkeeping per compaction (version edits, GC, ...).
    maintenance_per_compaction_s: float = 0.004
    #: metadata-only cost of a trivial move.
    trivial_move_s: float = 0.0005
    #: called after each compaction with no args; lets the runner grow
    #: the HDD fill level as the data set ages (Fig 10(b)).
    on_shape_change: Optional[Callable[[], None]] = None

    foreground_s: float = 0.0
    flush_s: float = 0.0
    compaction_s: float = 0.0
    maintenance_s: float = 0.0
    compaction_input_bytes: int = 0
    n_compactions: int = 0

    _wal_s_per_byte: Optional[float] = None

    # ------------------------------------------------------------ hooks
    def on_write(self, batch, wal_bytes: int) -> None:
        # WAL appends stream into the device write path; per-op device
        # latency amortises over large sequential writes, so charge the
        # large-write per-byte rate rather than a full op per batch.
        if self._wal_s_per_byte is None:
            one_mb = 1 << 20
            self._wal_s_per_byte = (
                self.write_device.estimate(AccessKind.WRITE, one_mb, True) / one_mb
            )
        t = wal_bytes * self._wal_s_per_byte
        t += len(batch) * self.memtable_insert_s
        self.foreground_s += t

    def on_flush(self, meta) -> None:
        cpu = self.cost_model.compute_times(
            meta.file_size, self.cost_model.entries_for(meta.file_size, self.kv_bytes)
        )
        # A dump performs build+compress+checksum (no S2/S3: input is
        # already in memory) and one sequential write.
        t = cpu.merge + cpu.compress + cpu.rechecksum
        t += self.write_device.estimate(
            AccessKind.WRITE, meta.file_size, sequential=True
        )
        self.flush_s += t

    def on_trivial_move(self, task) -> None:
        self.maintenance_s += self.trivial_move_s

    def on_compaction(self, task, subtasks, stats) -> None:
        sizes = [
            (s.input_bytes(), self.cost_model.entries_for(s.input_bytes(), self.kv_bytes))
            for s in subtasks
        ]
        jobs = subtask_jobs(sizes, self.cost_model, self.read_device, self.write_device)
        if self.spec.kind == SCP:
            result = simulate_scp(jobs)
        else:
            result = simulate_pipeline(jobs, self.spec.pipeline_config())
        self.compaction_s += result.makespan
        self.maintenance_s += self.maintenance_per_compaction_s
        self.compaction_input_bytes += result.total_bytes
        self.n_compactions += 1
        if self.on_shape_change is not None:
            self.on_shape_change()

    # ---------------------------------------------------------- results
    @property
    def total_s(self) -> float:
        return (
            self.foreground_s + self.flush_s + self.compaction_s + self.maintenance_s
        )

    def compaction_bandwidth(self) -> float:
        """Bytes of compaction input per virtual second of compaction."""
        if self.compaction_s <= 0:
            return 0.0
        return self.compaction_input_bytes / self.compaction_s

    def iops(self, n_ops: int) -> float:
        if self.total_s <= 0:
            return 0.0
        return n_ops / self.total_s
