"""Engine configuration.

Defaults follow the paper's §IV-A experimental setup: 4 MB memtable,
2 MB SSTables, 4 KB data blocks, snappy-class (``lz77``) compression.
Level size thresholds grow exponentially (``level_multiplier``), which
is what makes deeper trees as the working set grows and reproduces the
Fig 10 throughput decline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Options"]


@dataclass
class Options:
    """Tunable parameters of the LSM engine."""

    memtable_bytes: int = 4 * 1024 * 1024
    sstable_bytes: int = 2 * 1024 * 1024
    block_bytes: int = 4 * 1024
    block_restart_interval: int = 16
    compression: str = "lz77"
    checksum: str = "crc32"
    num_levels: int = 7
    # L0 flush files accumulate until this count triggers an L0->L1
    # compaction; deeper levels compact on byte thresholds.  Under
    # tiered / lazy-leveled policies both triggers count sorted *runs*
    # rather than files (at L0 every file is one run, so the leveled
    # reading is the same thing); see docs/COMPACTION.md.
    l0_compaction_trigger: int = 4
    l0_stop_writes_trigger: int = 12
    # Compaction-policy spec string ("leveled", "tiered:runs=4",
    # "lazy-leveled:runs=4", ...).  None adopts whatever policy the
    # store's manifest records (legacy manifests mean "leveled"); a
    # non-None spec that disagrees with the manifest raises
    # PolicyMismatchError on open.
    compaction_policy: Optional[str] = None
    level1_bytes: int = 10 * 1024 * 1024
    level_multiplier: int = 10
    bloom_bits_per_key: int = 10
    block_cache_entries: int = 1024
    # WAL group size: the engine syncs the log every `wal_sync_interval`
    # batches (0 = never sync; 1 = sync each batch).
    wal_sync_interval: int = 0
    # Replication log shipping: retain up to this many bytes of retired
    # WAL files after flush (0 = delete retired WALs immediately, the
    # classic behaviour) so a lagging follower can replay from them
    # instead of taking a full snapshot.
    wal_retain_bytes: int = 0
    paranoid_checks: bool = True
    # Transient-I/O handling: a compaction hit by a retryable error
    # (repro.devices.faults.TransientIOError) is re-run up to
    # `compaction_retries` times with exponential backoff starting at
    # `compaction_retry_backoff_s`; a *corrupt* input is never retried
    # — it gets quarantined instead (see docs/RECOVERY.md).
    compaction_retries: int = 3
    compaction_retry_backoff_s: float = 0.01

    def max_bytes_for_level(self, level: int) -> float:
        """Size threshold of ``level`` (level 0 is count-triggered)."""
        if level < 1:
            raise ValueError(f"levels >= 1 have byte thresholds, got {level}")
        return self.level1_bytes * (self.level_multiplier ** (level - 1))

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.memtable_bytes < 1024:
            raise ValueError("memtable_bytes too small")
        if self.block_bytes < 64:
            raise ValueError("block_bytes too small")
        if self.sstable_bytes < self.block_bytes:
            raise ValueError("sstable_bytes must be >= block_bytes")
        if self.block_restart_interval < 1:
            raise ValueError("block_restart_interval must be >= 1")
        if self.num_levels < 2:
            raise ValueError("need at least 2 levels")
        if self.level_multiplier < 2:
            raise ValueError("level_multiplier must be >= 2")
        if not 0 <= self.bloom_bits_per_key <= 64:
            raise ValueError("bloom_bits_per_key out of range")
        if self.l0_stop_writes_trigger < self.l0_compaction_trigger:
            raise ValueError("l0 stop trigger below compaction trigger")
        if self.compaction_retries < 0:
            raise ValueError("compaction_retries must be >= 0")
        if self.compaction_retry_backoff_s < 0:
            raise ValueError("compaction_retry_backoff_s must be >= 0")
        if self.wal_retain_bytes < 0:
            raise ValueError("wal_retain_bytes must be >= 0")
