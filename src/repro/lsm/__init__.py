"""LSM-tree engine substrate: formats, memtable, WAL, tables, levels."""

from .blockfmt import Block, BlockBuilder, BlockCorruption, bytewise_compare
from .bloom import BloomFilter, BloomFilterBuilder, bloom_hash
from .cache import CacheStats, LRUCache
from .ikey import (
    KIND_DELETE,
    KIND_VALUE,
    MAX_SEQUENCE,
    InternalKey,
    decode_internal_key,
    encode_internal_key,
    internal_compare,
    lookup_key,
)
from .iterators import (
    drop_tombstones,
    merge_iterators,
    merge_iterators_reverse,
    visible_entries,
)
from .memtable import GetResult, MemTable
from .options import Options
from .picker import CompactionPicker, CompactionTask
from .table_builder import TableBuilder, shortest_separator, shortest_successor
from .table_format import (
    BLOCK_TRAILER_SIZE,
    FOOTER_SIZE,
    BlockHandle,
    Footer,
    TableCorruption,
    decode_block_contents,
    encode_block_contents,
)
from .table_reader import Table
from .version import FileMetaData, Version, sstable_name
from .wal import LogCorruption, LogReader, LogWriter, WriteBatch

__all__ = [
    "BLOCK_TRAILER_SIZE",
    "Block",
    "BlockBuilder",
    "BlockCorruption",
    "BlockHandle",
    "BloomFilter",
    "BloomFilterBuilder",
    "CacheStats",
    "CompactionPicker",
    "CompactionTask",
    "FOOTER_SIZE",
    "FileMetaData",
    "Footer",
    "GetResult",
    "InternalKey",
    "KIND_DELETE",
    "KIND_VALUE",
    "LRUCache",
    "LogCorruption",
    "LogReader",
    "LogWriter",
    "MAX_SEQUENCE",
    "MemTable",
    "Options",
    "Table",
    "TableBuilder",
    "TableCorruption",
    "Version",
    "WriteBatch",
    "bloom_hash",
    "bytewise_compare",
    "decode_block_contents",
    "decode_internal_key",
    "drop_tombstones",
    "encode_block_contents",
    "encode_internal_key",
    "internal_compare",
    "lookup_key",
    "merge_iterators",
    "merge_iterators_reverse",
    "shortest_separator",
    "shortest_successor",
    "sstable_name",
    "visible_entries",
]
