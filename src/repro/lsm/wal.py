"""Write-ahead log: LevelDB's record-oriented log format.

The log is a sequence of 32 KiB blocks.  A record is split into
fragments, each with a 7-byte header: masked CRC-32 (4), payload
length (2), fragment type (1) — FULL, FIRST, MIDDLE, or LAST.  A block
tail shorter than a header is zero-padded.  The reader tolerates a
truncated final record (a crash mid-append) but reports corruption in
the interior.

What goes *into* records is the engine's write-batch encoding
(:class:`WriteBatch`): a 8-byte sequence, 4-byte count, then per-op
``kind`` byte and length-prefixed key/value.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..codec.checksum import crc32, mask_crc, unmask_crc
from ..codec.varint import (
    decode_varint32,
    encode_varint32,
    get_fixed32,
    get_fixed64,
    put_fixed32,
    put_fixed64,
)
from ..devices.vfs import ReadableFile, WritableFile
from .ikey import KIND_DELETE, KIND_VALUE

__all__ = [
    "BLOCK_SIZE",
    "HEADER_SIZE",
    "LogWriter",
    "LogReader",
    "LogCorruption",
    "WriteBatch",
    "WalRetention",
    "batch_seq_bounds",
    "iter_wal_batches",
]

BLOCK_SIZE = 32 * 1024
HEADER_SIZE = 7

_FULL, _FIRST, _MIDDLE, _LAST = 1, 2, 3, 4
_HEADER = struct.Struct("<IHB")


class LogCorruption(ValueError):
    """Raised on interior log corruption (bad CRC, bad fragment type)."""


class LogWriter:
    """Appends records to a log file.

    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) gets
    ``wal.records`` / ``wal.bytes`` (payload bytes, before framing) per
    append and ``wal.syncs`` per durability barrier.
    """

    def __init__(self, file: WritableFile, metrics=None) -> None:
        self._file = file
        self._block_offset = 0
        self._m_records = metrics.counter("wal.records") if metrics else None
        self._m_bytes = metrics.counter("wal.bytes") if metrics else None
        self._m_syncs = metrics.counter("wal.syncs") if metrics else None

    def add_record(self, payload: bytes) -> None:
        """Append one record, fragmenting across block boundaries."""
        if self._m_records is not None:
            self._m_records.inc()
            self._m_bytes.inc(len(payload))
        left = memoryview(payload)
        begin = True
        while True:
            leftover = BLOCK_SIZE - self._block_offset
            if leftover < HEADER_SIZE:
                # Pad the block tail with zeros and start a new block.
                if leftover > 0:
                    self._file.append(b"\x00" * leftover)
                self._block_offset = 0
                leftover = BLOCK_SIZE
            avail = leftover - HEADER_SIZE
            fragment = left[:avail]
            left = left[avail:]
            end = len(left) == 0
            if begin and end:
                ftype = _FULL
            elif begin:
                ftype = _FIRST
            elif end:
                ftype = _LAST
            else:
                ftype = _MIDDLE
            self._emit(ftype, bytes(fragment))
            begin = False
            if end:
                return

    def _emit(self, ftype: int, data: bytes) -> None:
        crc = mask_crc(crc32(bytes([ftype]) + data))
        self._file.append(_HEADER.pack(crc, len(data), ftype))
        self._file.append(data)
        self._block_offset += HEADER_SIZE + len(data)

    def sync(self) -> None:
        self._file.sync()
        if self._m_syncs is not None:
            self._m_syncs.inc()

    def close(self) -> None:
        self._file.close()


class LogReader:
    """Iterates records from a log file.

    ``torn_tail`` becomes True once iteration observes a truncated
    final record or a dangling FIRST/MIDDLE fragment at EOF — the
    (tolerated) signature of a crash mid-append; recovery counts it.
    """

    def __init__(self, file: ReadableFile, verify_checksums: bool = True) -> None:
        self._data = file.read_all()
        self._verify = verify_checksums
        self.torn_tail = False

    def __iter__(self) -> Iterator[bytes]:
        data = self._data
        size = len(data)
        pos = 0
        pending: list[bytes] = []
        in_record = False
        while pos + HEADER_SIZE <= size:
            block_left = BLOCK_SIZE - (pos % BLOCK_SIZE)
            if block_left < HEADER_SIZE:
                pos += block_left  # skip zero padding
                continue
            crc, length, ftype = _HEADER.unpack_from(data, pos)
            if ftype == 0 and length == 0 and crc == 0:
                # Zero fill (preallocated tail); skip to next block.
                pos += block_left
                continue
            frag_end = pos + HEADER_SIZE + length
            if frag_end > size:
                self.torn_tail = True
                break  # truncated tail: tolerated (crash mid-append)
            payload = data[pos + HEADER_SIZE : frag_end]
            if self._verify and crc32(bytes([ftype]) + payload) != unmask_crc(crc):
                raise LogCorruption(f"bad fragment checksum at offset {pos}")
            pos = frag_end
            if ftype == _FULL:
                if in_record:
                    raise LogCorruption("FULL fragment inside open record")
                yield payload
            elif ftype == _FIRST:
                if in_record:
                    raise LogCorruption("FIRST fragment inside open record")
                pending = [payload]
                in_record = True
            elif ftype == _MIDDLE:
                if not in_record:
                    raise LogCorruption("MIDDLE fragment without FIRST")
                pending.append(payload)
            elif ftype == _LAST:
                if not in_record:
                    raise LogCorruption("LAST fragment without FIRST")
                pending.append(payload)
                in_record = False
                yield b"".join(pending)
                pending = []
            else:
                raise LogCorruption(f"unknown fragment type {ftype}")
        # A dangling FIRST/MIDDLE at EOF is a torn write: tolerated.
        if in_record:
            self.torn_tail = True


class WriteBatch:
    """An atomic group of puts/deletes with one starting sequence."""

    _BATCH_HEADER = 12  # 8-byte sequence + 4-byte count

    def __init__(self) -> None:
        self._ops: list[tuple[int, bytes, bytes]] = []

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        if not key:
            raise ValueError("empty keys are not allowed")
        self._ops.append((KIND_VALUE, key, value))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        if not isinstance(key, bytes):
            raise TypeError("keys must be bytes")
        if not key:
            raise ValueError("empty keys are not allowed")
        self._ops.append((KIND_DELETE, key, b""))
        return self

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[tuple[int, bytes, bytes]]:
        return iter(self._ops)

    def byte_size(self) -> int:
        """Approximate encoded size (for memtable accounting)."""
        return self._BATCH_HEADER + sum(
            1 + 10 + len(k) + len(v) for _, k, v in self._ops
        )

    def encode(self, sequence: int) -> bytes:
        """Serialize with the batch's starting sequence number."""
        out = bytearray(put_fixed64(sequence))
        out += put_fixed32(len(self._ops))
        for kind, key, value in self._ops:
            out.append(kind)
            out += encode_varint32(len(key))
            out += key
            if kind == KIND_VALUE:
                out += encode_varint32(len(value))
                out += value
        return bytes(out)

    @staticmethod
    def seq_bounds(blob: bytes) -> tuple[int, int]:
        """``(base_seq, count)`` from an encoded batch's fixed header,
        without parsing the ops.  The batch spans sequences
        ``base_seq .. base_seq + count - 1``."""
        return batch_seq_bounds(blob)

    @classmethod
    def decode(cls, blob: bytes) -> tuple["WriteBatch", int]:
        """Parse an encoded batch → ``(batch, starting_sequence)``."""
        if len(blob) < cls._BATCH_HEADER:
            raise ValueError("batch blob too short")
        sequence = get_fixed64(blob, 0)
        count = get_fixed32(blob, 8)
        batch = cls()
        pos = cls._BATCH_HEADER
        for _ in range(count):
            if pos >= len(blob):
                raise ValueError("truncated batch: missing op kind")
            kind = blob[pos]
            pos += 1
            klen, pos = decode_varint32(blob, pos)
            key = blob[pos : pos + klen]
            if len(key) != klen:
                raise ValueError("truncated batch key")
            pos += klen
            if kind == KIND_VALUE:
                vlen, pos = decode_varint32(blob, pos)
                value = blob[pos : pos + vlen]
                if len(value) != vlen:
                    raise ValueError("truncated batch value")
                pos += vlen
                batch.put(bytes(key), bytes(value))
            elif kind == KIND_DELETE:
                batch.delete(bytes(key))
            else:
                raise ValueError(f"unknown batch op kind {kind}")
        if pos != len(blob):
            raise ValueError("trailing bytes after batch ops")
        return batch, sequence


# ----------------------------------------------------- replication aids
def batch_seq_bounds(blob: bytes) -> tuple[int, int]:
    """``(base_seq, count)`` of an encoded batch without parsing ops."""
    if len(blob) < WriteBatch._BATCH_HEADER:
        raise ValueError("batch blob too short")
    return get_fixed64(blob, 0), get_fixed32(blob, 8)


def iter_wal_batches(file: ReadableFile) -> Iterator[tuple[int, int, bytes]]:
    """Yield ``(base_seq, count, record)`` for each batch in a WAL file.

    A torn tail is tolerated exactly as in recovery; interior
    corruption raises :class:`LogCorruption`.  This is the primary's
    replay path when a follower subscribes from a sequence that has
    already been rotated out of the live WAL but is still retained.
    """
    for record in LogReader(file):
        base_seq, count = batch_seq_bounds(record)
        yield base_seq, count, record


class WalRetention:
    """Byte-capped set of retired WAL files kept for log shipping.

    When the memtable flushes, the engine normally deletes the old WAL
    file — its contents are durable in an SSTable.  With replication a
    follower may still need those records, so retired logs are kept
    (up to ``retain_bytes``) and indexed by the sequence range they
    cover.  Pruning is oldest-first; a follower whose requested
    sequence falls before the retained floor must take a snapshot.

    Not thread-safe: callers hold the DB mutex.
    """

    def __init__(self, storage, retain_bytes: int) -> None:
        self._storage = storage
        self._cap = retain_bytes
        # Ordered oldest → newest: (name, first_seq, last_seq, bytes).
        self._files: list[tuple[str, int, int, int]] = []

    @property
    def total_bytes(self) -> int:
        return sum(entry[3] for entry in self._files)

    @property
    def floor_seq(self) -> int:
        """Lowest sequence any retained file covers (0 when empty)."""
        return self._files[0][1] if self._files else 0

    @property
    def ceiling_seq(self) -> int:
        """Highest sequence any retained file covers (0 when empty)."""
        return self._files[-1][2] if self._files else 0

    def file_names(self) -> list[str]:
        return [entry[0] for entry in self._files]

    def add(self, name: str, first_seq: int, last_seq: int, size: int) -> None:
        """Retain a retired WAL covering ``first_seq..last_seq``, then
        prune oldest-first back under the byte cap (always keeping the
        just-added file so a single oversized WAL still bridges)."""
        self._files.append((name, first_seq, last_seq, size))
        while len(self._files) > 1 and self.total_bytes > self._cap:
            self._drop_oldest()

    def _drop_oldest(self) -> None:
        name, *_ = self._files.pop(0)
        try:
            self._storage.delete(name)
        except FileNotFoundError:
            pass

    def covers(self, start_seq: int) -> bool:
        """True when retained files can replay from ``start_seq`` on
        (i.e. ``start_seq`` is at or above the retained floor)."""
        if not self._files:
            return False
        return start_seq >= self.floor_seq

    def records_from(self, start_seq: int) -> Iterator[tuple[int, int, bytes]]:
        """Replay ``(base_seq, count, record)`` with last sequence ≥
        ``start_seq`` from the retained files, oldest first."""
        for name, first_seq, last_seq, _ in list(self._files):
            if last_seq < start_seq:
                continue
            with self._storage.open(name) as file:
                for base_seq, count, record in iter_wal_batches(file):
                    if base_seq + count - 1 < start_seq:
                        continue
                    yield base_seq, count, record

    def clear(self) -> None:
        while self._files:
            self._drop_oldest()
