"""Back-compat shim: compaction picking moved to :mod:`repro.compaction`.

The seed engine had exactly one policy — classic leveling — living
here as ``CompactionPicker``.  The policy engine generalizes it into a
:class:`repro.compaction.CompactionPolicy` family (leveled / tiered /
lazy-leveled); this module keeps the old import paths working:

* ``CompactionTask`` re-exported from :mod:`repro.compaction.policy`
  (same fields, plus ``output_level``/``output_run`` placement).
* ``CompactionPicker`` is an alias of
  :class:`repro.compaction.leveled.LeveledPolicy`, which is the old
  picker verbatim.
"""

from __future__ import annotations

from ..compaction.leveled import LeveledPolicy
from ..compaction.policy import CompactionTask

__all__ = ["CompactionTask", "CompactionPicker"]

CompactionPicker = LeveledPolicy
