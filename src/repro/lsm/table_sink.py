"""Assemble SSTables from pre-encoded data blocks.

The pipelined compaction's *compute* stage finishes blocks completely —
merged, compressed, checksummed (S4–S6) — so the *write* stage must
only append bytes and track index metadata (S7).  :class:`TableSink`
is that write stage's target: it receives :class:`EncodedBlock`
artifacts in key order, cuts a new output file whenever the current one
reaches ``options.sstable_bytes`` (the paper's "multiple size-limited
SSTables"), and finishes each file with filter/index/footer.

Contrast with :class:`repro.lsm.table_builder.TableBuilder`, which does
the compression/checksumming itself and is used by the (sequential)
memtable flush path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..codec.checksum import get_checksummer
from ..codec.compress import get_codec
from ..devices.vfs import Storage
from .blockfmt import BlockBuilder
from .bloom import BloomFilterBuilder
from .ikey import internal_compare
from .options import Options
from .table_format import BlockHandle, Footer, encode_block_contents
from .version import FileMetaData

__all__ = ["EncodedBlock", "TableSink"]


@dataclass(frozen=True)
class EncodedBlock:
    """A finished data block plus the metadata the sink needs.

    ``stored`` is payload + 5-byte trailer, exactly as written to disk.
    ``key_hashes`` are :func:`repro.lsm.bloom.bloom_hash` values of the
    block's user keys (for the output table's filter).
    ``uncompressed_bytes`` feeds compaction-bandwidth accounting.
    """

    stored: bytes
    first_key: bytes
    last_key: bytes
    num_entries: int
    key_hashes: tuple[int, ...] = ()
    uncompressed_bytes: int = 0


class TableSink:
    """Write stage target: streams encoded blocks into output tables."""

    def __init__(
        self,
        storage: Storage,
        options: Options,
        file_namer: Callable[[], str],
    ) -> None:
        """``file_namer`` returns the name for each new output file."""
        self.storage = storage
        self.options = options
        self.file_namer = file_namer
        self._checksummer = get_checksummer(options.checksum)
        self.outputs: list[FileMetaData] = []
        self.output_names: list[str] = []
        self._file = None
        self._name: Optional[str] = None
        self._offset = 0
        self._index: Optional[BlockBuilder] = None
        self._bloom: Optional[BloomFilterBuilder] = None
        self._smallest: Optional[bytes] = None
        self._largest: Optional[bytes] = None
        self._num_entries = 0
        self._last_key: Optional[bytes] = None
        self.blocks_written = 0
        self.bytes_written = 0
        self.entries_written = 0

    def _open_file(self) -> None:
        self._name = self.file_namer()
        self._file = self.storage.create(self._name)
        self._offset = 0
        self._index = BlockBuilder(1, compare=internal_compare)
        self._bloom = BloomFilterBuilder(self.options.bloom_bits_per_key)
        self._smallest = None
        self._largest = None
        self._num_entries = 0

    def append(self, block: EncodedBlock) -> None:
        """Append one finished block; blocks must arrive in key order."""
        if block.num_entries <= 0:
            return
        if self._last_key is not None and (
            internal_compare(block.first_key, self._last_key) <= 0
        ):
            raise ValueError(
                f"blocks out of order: first_key {block.first_key!r} after "
                f"{self._last_key!r}"
            )
        if self._file is None:
            self._open_file()
        handle = BlockHandle(self._offset, len(block.stored) - 5)
        self._file.append(block.stored)
        self._offset += len(block.stored)
        # Index key: the block's own last key (a valid upper bound; we
        # cannot shorten toward an unknown next block here).
        self._index.add(block.last_key, handle.encode())
        for h in block.key_hashes:
            self._bloom.add_hash(h)
        if self._smallest is None:
            self._smallest = block.first_key
        self._largest = block.last_key
        self._last_key = block.last_key
        self._num_entries += block.num_entries
        self.blocks_written += 1
        self.bytes_written += len(block.stored)
        self.entries_written += block.num_entries
        if self._offset >= self.options.sstable_bytes:
            self._finish_file()

    def _finish_file(self) -> None:
        if self._file is None:
            return
        null = get_codec("null")
        if len(self._bloom) and self.options.bloom_bits_per_key > 0:
            filter_blob = self._bloom.finish()
        else:
            filter_blob = b""
        stored = encode_block_contents(filter_blob, null, self._checksummer)
        filter_handle = BlockHandle(self._offset, len(stored) - 5)
        self._file.append(stored)
        self._offset += len(stored)
        index_raw = self._index.finish()
        stored = encode_block_contents(index_raw, null, self._checksummer)
        index_handle = BlockHandle(self._offset, len(stored) - 5)
        self._file.append(stored)
        self._offset += len(stored)
        footer = Footer(filter_handle, index_handle, self._num_entries)
        self._file.append(footer.encode())
        self._offset += len(footer.encode())
        # Durability barrier: the version edit that installs this file
        # syncs the MANIFEST, so the file itself must hit stable
        # storage first — otherwise a power cut leaves a durable
        # reference to a vanished table.
        self._file.sync()
        self._file.close()
        number = _parse_file_number(self._name)
        self.outputs.append(
            FileMetaData(
                number=number,
                file_size=self._offset,
                smallest=self._smallest,
                largest=self._largest,
                file_name=self._name,
            )
        )
        self.output_names.append(self._name)
        self._file = None
        self._name = None

    def finish(self) -> list[FileMetaData]:
        """Seal the current file (if any) and return all outputs."""
        self._finish_file()
        return self.outputs


def _parse_file_number(name: str) -> int:
    """Extract the numeric id from names like ``000123.sst``."""
    stem = name.split("/")[-1].split(".")[0]
    try:
        return int(stem)
    except ValueError:
        return abs(hash(name)) % (1 << 31)
