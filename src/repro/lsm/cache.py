"""LRU block cache.

Caches *decoded* data blocks keyed by ``(table_id, block_offset)`` so
repeated point lookups skip S1–S3 (read, checksum, decompress).  The
capacity is entry-counted; with the default 4 KiB blocks that makes
sizing predictable.  Thread-safe: the DB's read path may race with the
background compaction thread.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from ..analysis.locksan import make_lock

__all__ = ["LRUCache", "CacheStats"]


class CacheStats:
    """Hit/miss counters."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """A plain LRU map with statistics.

    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) mirrors
    the hit/miss/eviction counters under ``cache.*`` so cache behaviour
    shows up in the engine-wide metrics snapshot.
    """

    def __init__(self, capacity: int, metrics=None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._map: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = make_lock("lsm.cache")
        self.stats = CacheStats()
        self._m_hits = metrics.counter("cache.hits") if metrics else None
        self._m_misses = metrics.counter("cache.misses") if metrics else None
        self._m_evict = metrics.counter("cache.evictions") if metrics else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            try:
                value = self._map[key]
            except KeyError:
                self.stats.misses += 1
                if self._m_misses is not None:
                    self._m_misses.inc()
                return None
            self._map.move_to_end(key)
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._map:
                self._map.move_to_end(key)
            self._map[key] = value
            while len(self._map) > self.capacity:
                self._map.popitem(last=False)
                self.stats.evictions += 1
                if self._m_evict is not None:
                    self._m_evict.inc()

    def invalidate(self, key: Hashable) -> None:
        with self._lock:
            self._map.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._map.clear()
