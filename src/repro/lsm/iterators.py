"""Iterator combinators over ``(internal_key, value)`` streams.

The engine's read path and compaction input both consume ordered
streams of internal-key entries.  Sources are plain Python iterators
(memtable, Table, Block all yield in internal order); this module
provides:

* :func:`merge_iterators` — heap-based k-way merge preserving internal
  order across sources, with *source priority* for equal internal keys
  (never happens for distinct sequences, but keeps ties deterministic).
* :func:`visible_entries` — collapse a merged stream to the newest
  entry per user key visible at a snapshot, dropping shadowed versions.
* :func:`drop_tombstones` — additionally remove deletion markers
  (legal only at the bottom level, where nothing older can exist).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional

from .ikey import KIND_DELETE, InternalKey, decode_internal_key

__all__ = [
    "drop_tombstones",
    "merge_iterators",
    "merge_iterators_reverse",
    "visible_entries",
]

Entry = tuple[bytes, bytes]


def merge_iterators(sources: Iterable[Iterator[Entry]]) -> Iterator[Entry]:
    """K-way merge of internally-ordered entry streams.

    Earlier sources win ties, so pass newer components first
    (memtable, then L0 newest→oldest, then L1, ...).
    """
    heap: list[tuple[InternalKey, int, Entry, Iterator[Entry]]] = []
    for priority, src in enumerate(sources):
        it = iter(src)
        first = next(it, None)
        if first is not None:
            heapq.heappush(heap, (InternalKey.decode(first[0]), priority, first, it))
    while heap:
        _, priority, entry, it = heapq.heappop(heap)
        yield entry
        nxt = next(it, None)
        if nxt is not None:
            heapq.heappush(heap, (InternalKey.decode(nxt[0]), priority, nxt, it))


class _ReverseKey:
    """Heap key that inverts internal-key order (for descending merges)."""

    __slots__ = ("ikey",)

    def __init__(self, ikey: bytes) -> None:
        self.ikey = ikey

    def __lt__(self, other: "_ReverseKey") -> bool:
        from .ikey import internal_compare

        return internal_compare(self.ikey, other.ikey) > 0


def merge_iterators_reverse(
    sources: Iterable[Iterator[Entry]],
) -> Iterator[Entry]:
    """K-way merge of *descending* entry streams, preserving descent.

    Mirror of :func:`merge_iterators`: every source must already yield
    in descending internal order (``iter_reverse`` family).
    """
    heap: list[tuple[_ReverseKey, int, Entry, Iterator[Entry]]] = []
    for priority, src in enumerate(sources):
        it = iter(src)
        first = next(it, None)
        if first is not None:
            heapq.heappush(heap, (_ReverseKey(first[0]), priority, first, it))
    while heap:
        _, priority, entry, it = heapq.heappop(heap)
        yield entry
        nxt = next(it, None)
        if nxt is not None:
            heapq.heappush(heap, (_ReverseKey(nxt[0]), priority, nxt, it))


def visible_entries(
    merged: Iterator[Entry], snapshot: Optional[int] = None
) -> Iterator[Entry]:
    """Newest visible entry per user key (tombstones still emitted).

    Entries with sequence > ``snapshot`` are invisible; among the rest,
    only the first (newest) per user key survives.
    """
    current_user: Optional[bytes] = None
    for ikey, value in merged:
        user, seq, _kind = decode_internal_key(ikey)
        if snapshot is not None and seq > snapshot:
            continue
        if user == current_user:
            continue  # older, shadowed version
        current_user = user
        yield ikey, value


def drop_tombstones(entries: Iterator[Entry]) -> Iterator[Entry]:
    """Remove deletion markers from a visible-entries stream."""
    for ikey, value in entries:
        _, _, kind = decode_internal_key(ikey)
        if kind != KIND_DELETE:
            yield ikey, value
