"""Skiplist memtable (the C0 component).

A probabilistic skiplist ordered by :func:`repro.lsm.ikey.internal_compare`.
Insertions are O(log n) expected; iteration is an ordered walk of level
0.  The memtable owns no locking — the DB serialises writers — but
concurrent *readers* during an insert are safe for the engine's usage
(new nodes are fully initialised before being linked, and links are
updated bottom-up, the classic LevelDB argument).

Entry payload is stored as ``(internal_key, value)``; tombstones carry
an empty value with ``KIND_DELETE`` in the key trailer.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from .ikey import (
    KIND_DELETE,
    KIND_VALUE,
    MAX_SEQUENCE,
    decode_internal_key,
    encode_internal_key,
    internal_compare,
)

__all__ = ["MemTable", "GetResult"]

_MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("ikey", "value", "next")

    def __init__(self, ikey: Optional[bytes], value: bytes, height: int) -> None:
        self.ikey = ikey
        self.value = value
        self.next: list[Optional[_Node]] = [None] * height


class GetResult:
    """Outcome of a memtable lookup."""

    __slots__ = ("found", "deleted", "value")

    def __init__(self, found: bool, deleted: bool, value: Optional[bytes]) -> None:
        self.found = found  # the user key has an entry visible at the snapshot
        self.deleted = deleted  # ... and that entry is a tombstone
        self.value = value

    NOT_FOUND: "GetResult"


GetResult.NOT_FOUND = GetResult(False, False, None)


class MemTable:
    """In-memory sorted buffer of recent writes."""

    def __init__(self, seed: int = 0) -> None:
        self._head = _Node(None, b"", _MAX_HEIGHT)
        self._height = 1
        self._rng = random.Random(seed)
        self._approx_bytes = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def approximate_bytes(self) -> int:
        """Rough heap footprint used for the flush trigger."""
        return self._approx_bytes

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(
        self, ikey: bytes, prev: Optional[list[_Node]] = None
    ) -> Optional[_Node]:
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.next[level]
            if nxt is not None and internal_compare(nxt.ikey, ikey) < 0:
                node = nxt
            else:
                if prev is not None:
                    prev[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def add(self, sequence: int, kind: int, user_key: bytes, value: bytes) -> None:
        """Insert an entry; (user_key, sequence) pairs must be unique."""
        ikey = encode_internal_key(user_key, sequence, kind)
        prev: list[_Node] = [self._head] * _MAX_HEIGHT
        self._find_greater_or_equal(ikey, prev)
        height = self._random_height()
        if height > self._height:
            for level in range(self._height, height):
                prev[level] = self._head
            self._height = height
        node = _Node(ikey, value, height)
        for level in range(height):
            node.next[level] = prev[level].next[level]
            prev[level].next[level] = node
        self._count += 1
        self._approx_bytes += len(ikey) + len(value) + 48  # node overhead

    def put(self, sequence: int, user_key: bytes, value: bytes) -> None:
        """Insert a live value."""
        self.add(sequence, KIND_VALUE, user_key, value)

    def delete(self, sequence: int, user_key: bytes) -> None:
        """Insert a tombstone."""
        self.add(sequence, KIND_DELETE, user_key, b"")

    def get(self, user_key: bytes, snapshot: int = MAX_SEQUENCE) -> GetResult:
        """Newest entry for ``user_key`` visible at ``snapshot``."""
        probe = encode_internal_key(user_key, snapshot, KIND_VALUE)
        node = self._find_greater_or_equal(probe)
        if node is None:
            return GetResult.NOT_FOUND
        ukey, _seq, kind = decode_internal_key(node.ikey)
        if ukey != user_key:
            return GetResult.NOT_FOUND
        if kind == KIND_DELETE:
            return GetResult(True, True, None)
        return GetResult(True, False, node.value)

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(internal_key, value)`` in internal-key order."""
        node = self._head.next[0]
        while node is not None:
            yield node.ikey, node.value
            node = node.next[0]

    def iter_from(self, ikey: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield entries with internal key >= ``ikey``."""
        node = self._find_greater_or_equal(ikey)
        while node is not None:
            yield node.ikey, node.value
            node = node.next[0]

    def iter_reverse(self) -> Iterator[tuple[bytes, bytes]]:
        """Entries in descending internal-key order.

        The skiplist has no back pointers; a reverse scan materialises
        the (memtable-bounded) level-0 walk and reverses it.  The copy
        is capped by ``memtable_bytes``, so this stays O(buffer), not
        O(database).
        """
        return reversed(list(self))

    def iter_reverse_from(self, ikey: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Entries with internal key <= ``ikey``, descending."""
        out = []
        node = self._head.next[0]
        while node is not None and internal_compare(node.ikey, ikey) <= 0:
            out.append((node.ikey, node.value))
            node = node.next[0]
        return reversed(out)

    def smallest_key(self) -> Optional[bytes]:
        node = self._head.next[0]
        return None if node is None else node.ikey

    def largest_key(self) -> Optional[bytes]:
        # O(n) walk at level 0 is fine: called once per flush.
        node = self._head.next[0]
        if node is None:
            return None
        while node.next[0] is not None:
            node = node.next[0]
        return node.ikey
