"""Internal key encoding and ordering.

Every entry in the memtable and in SSTables is keyed by an *internal
key*: the user key followed by an 8-byte little-endian trailer packing
``(sequence << 8) | kind``.  Ordering is user key ascending, then
sequence **descending** (newer first), then kind descending — exactly
LevelDB's comparator — so a scan positioned at ``(key, seq=MAX)`` finds
the newest visible version first.

``kind`` distinguishes live values from tombstones; deletions are
ordinary entries that shadow older values and are dropped during the
bottom-level compaction.
"""

from __future__ import annotations

from ..codec.varint import get_fixed64, put_fixed64

__all__ = [
    "KIND_DELETE",
    "KIND_VALUE",
    "MAX_SEQUENCE",
    "InternalKey",
    "pack_trailer",
    "unpack_trailer",
    "encode_internal_key",
    "decode_internal_key",
    "internal_compare",
    "lookup_key",
]

KIND_DELETE = 0
KIND_VALUE = 1
MAX_SEQUENCE = (1 << 56) - 1


def pack_trailer(sequence: int, kind: int) -> int:
    """Pack sequence and kind into the 64-bit trailer."""
    if not 0 <= sequence <= MAX_SEQUENCE:
        raise ValueError(f"sequence out of range: {sequence}")
    if kind not in (KIND_DELETE, KIND_VALUE):
        raise ValueError(f"bad kind: {kind}")
    return (sequence << 8) | kind


def unpack_trailer(trailer: int) -> tuple[int, int]:
    """Inverse of :func:`pack_trailer` → ``(sequence, kind)``."""
    return trailer >> 8, trailer & 0xFF


def encode_internal_key(user_key: bytes, sequence: int, kind: int) -> bytes:
    """Serialize an internal key."""
    return user_key + put_fixed64(pack_trailer(sequence, kind))


def decode_internal_key(ikey: bytes) -> tuple[bytes, int, int]:
    """Split an internal key into ``(user_key, sequence, kind)``."""
    if len(ikey) < 8:
        raise ValueError(f"internal key too short: {len(ikey)} bytes")
    seq, kind = unpack_trailer(get_fixed64(ikey, len(ikey) - 8))
    return ikey[:-8], seq, kind


def internal_compare(a: bytes, b: bytes) -> int:
    """Three-way comparison of encoded internal keys.

    User key ascending; on equal user keys the larger trailer (newer
    sequence) sorts *first*.
    """
    ua, ub = a[:-8], b[:-8]
    if ua < ub:
        return -1
    if ua > ub:
        return 1
    ta = get_fixed64(a, len(a) - 8)
    tb = get_fixed64(b, len(b) - 8)
    if ta > tb:
        return -1
    if ta < tb:
        return 1
    return 0


class InternalKey:
    """A decoded internal key with rich comparisons.

    Sort order matches :func:`internal_compare`; usable directly as a
    sort key or heap element in merging iterators.
    """

    __slots__ = ("user_key", "sequence", "kind")

    def __init__(self, user_key: bytes, sequence: int, kind: int) -> None:
        self.user_key = user_key
        self.sequence = sequence
        self.kind = kind

    @classmethod
    def decode(cls, ikey: bytes) -> "InternalKey":
        return cls(*decode_internal_key(ikey))

    def encode(self) -> bytes:
        return encode_internal_key(self.user_key, self.sequence, self.kind)

    def _order(self):
        # sequence/kind negated: newer sorts first.
        return (self.user_key, -self.sequence, -self.kind)

    def __lt__(self, other: "InternalKey") -> bool:
        return self._order() < other._order()

    def __le__(self, other: "InternalKey") -> bool:
        return self._order() <= other._order()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InternalKey)
            and self.user_key == other.user_key
            and self.sequence == other.sequence
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.user_key, self.sequence, self.kind))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        k = "VAL" if self.kind == KIND_VALUE else "DEL"
        return f"InternalKey({self.user_key!r}, seq={self.sequence}, {k})"


def lookup_key(user_key: bytes, snapshot_sequence: int) -> bytes:
    """Encoded key positioned at the newest entry visible to a snapshot."""
    return encode_internal_key(user_key, snapshot_sequence, KIND_VALUE)
