"""SSTable writer.

Entries (internal key → value) arrive in internal-key order; the
builder cuts a data block every ``options.block_bytes``, writes it with
compression + checksum trailer (pipeline steps S5–S7 of a flush or
compaction), and records an index entry whose key is a *short
separator* — the smallest key >= the block's last key and < the next
block's first key, which keeps the index compact.
"""

from __future__ import annotations

from typing import Optional

from ..codec.checksum import get_checksummer
from ..codec.compress import get_codec
from ..devices.vfs import WritableFile
from .blockfmt import BlockBuilder
from .bloom import BloomFilterBuilder
from .ikey import internal_compare
from .options import Options
from .table_format import BlockHandle, Footer, encode_block_contents

__all__ = ["TableBuilder", "shortest_separator", "shortest_successor"]


def shortest_separator(a_ikey: bytes, b_ikey: bytes) -> bytes:
    """A short internal key k with a <= k < b (user-key part shortened).

    Works on the user-key prefix; the 8-byte trailer of ``a`` is
    preserved so internal ordering semantics hold.  Falls back to ``a``
    when no shorter separator exists.
    """
    a_user, a_trailer = a_ikey[:-8], a_ikey[-8:]
    b_user = b_ikey[:-8]
    n = min(len(a_user), len(b_user))
    i = 0
    while i < n and a_user[i] == b_user[i]:
        i += 1
    if i >= n:
        return a_ikey  # one is a prefix of the other: cannot shorten
    byte = a_user[i]
    if byte < 0xFF and byte + 1 < b_user[i]:
        cand = a_user[:i] + bytes([byte + 1])
        sep = cand + a_trailer
        if internal_compare(a_ikey, sep) <= 0:
            return sep
    return a_ikey


def shortest_successor(ikey: bytes) -> bytes:
    """A short internal key >= ``ikey`` (used for the final index entry)."""
    user, trailer = ikey[:-8], ikey[-8:]
    for i, byte in enumerate(user):
        if byte != 0xFF:
            return user[: i + 1][:-1] + bytes([byte + 1]) + trailer
    return ikey


class TableBuilder:
    """Streams sorted entries into an SSTable file."""

    def __init__(self, file: WritableFile, options: Optional[Options] = None) -> None:
        self.options = options or Options()
        self._file = file
        self._codec = get_codec(self.options.compression)
        self._checksummer = get_checksummer(self.options.checksum)
        self._data_block = BlockBuilder(
            self.options.block_restart_interval, compare=internal_compare
        )
        self._index_block = BlockBuilder(1, compare=internal_compare)
        self._bloom = BloomFilterBuilder(self.options.bloom_bits_per_key)
        self._offset = 0
        self._num_entries = 0
        self._pending_handle: Optional[BlockHandle] = None
        self._pending_last_key = b""
        self._last_key = b""
        self._finished = False
        self.smallest: Optional[bytes] = None
        self.largest: Optional[bytes] = None

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def file_size(self) -> int:
        return self._offset

    def add(self, ikey: bytes, value: bytes) -> None:
        """Append one entry; internal keys must be strictly increasing."""
        if self._finished:
            raise RuntimeError("add() after finish()")
        if self._num_entries and internal_compare(ikey, self._last_key) <= 0:
            raise ValueError(f"keys out of order: {ikey!r} after {self._last_key!r}")
        self._maybe_flush_pending_index(next_key=ikey)
        if self.smallest is None:
            self.smallest = ikey
        self.largest = ikey
        self._data_block.add(ikey, value)
        self._bloom.add(ikey[:-8])
        self._last_key = ikey
        self._num_entries += 1
        if self._data_block.current_size_estimate() >= self.options.block_bytes:
            self._flush_data_block()

    def _maybe_flush_pending_index(self, next_key: Optional[bytes]) -> None:
        if self._pending_handle is None:
            return
        if next_key is not None:
            index_key = shortest_separator(self._pending_last_key, next_key)
        else:
            index_key = shortest_successor(self._pending_last_key)
        self._index_block.add(index_key, self._pending_handle.encode())
        self._pending_handle = None

    def _flush_data_block(self) -> None:
        if self._data_block.empty:
            return
        raw = self._data_block.finish()
        self._pending_handle = self._write_block(raw)
        self._pending_last_key = self._data_block.last_key
        self._data_block.reset()

    def _write_block(self, raw: bytes) -> BlockHandle:
        stored = encode_block_contents(raw, self._codec, self._checksummer)
        handle = BlockHandle(self._offset, len(stored) - 5)
        self._file.append(stored)
        self._offset += len(stored)
        return handle

    def finish(self) -> Footer:
        """Flush remaining data, write filter/index/footer, return footer."""
        if self._finished:
            raise RuntimeError("finish() called twice")
        self._flush_data_block()
        self._maybe_flush_pending_index(next_key=None)
        # Filter block (whole-table bloom), stored uncompressed so the
        # reader need not decompress to probe it.
        if len(self._bloom) and self.options.bloom_bits_per_key > 0:
            filter_blob = self._bloom.finish()
        else:
            filter_blob = b""
        null = get_codec("null")
        stored = encode_block_contents(filter_blob, null, self._checksummer)
        filter_handle = BlockHandle(self._offset, len(stored) - 5)
        self._file.append(stored)
        self._offset += len(stored)
        # Index block.
        index_raw = self._index_block.finish()
        index_handle = self._write_block(index_raw)
        footer = Footer(filter_handle, index_handle, self._num_entries)
        self._file.append(footer.encode())
        self._offset += len(footer.encode())
        self._finished = True
        return footer

    def abandon(self) -> None:
        """Mark the builder unusable without writing a footer."""
        self._finished = True
