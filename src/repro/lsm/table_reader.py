"""SSTable reader: point lookups and ordered iteration.

``Table.get`` is the read path the paper's background compactions keep
short: bloom probe → index binary search → one data-block read (S1) →
checksum verify (S2) → decompress (S3) → in-block binary search.
``Table.__iter__``/``iter_from`` drive both scans and compaction input.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..codec.checksum import get_checksummer
from ..devices.vfs import ReadableFile
from .blockfmt import Block
from .bloom import BloomFilter
from .cache import LRUCache
from .ikey import internal_compare
from .options import Options
from .table_format import (
    FOOTER_SIZE,
    BlockHandle,
    Footer,
    TableCorruption,
    decode_block_contents,
    read_block,
)

__all__ = ["Table"]


class Table:
    """An open, immutable SSTable."""

    def __init__(
        self,
        file: ReadableFile,
        options: Optional[Options] = None,
        cache: Optional[LRUCache] = None,
        table_id: object = None,
    ) -> None:
        self.options = options or Options()
        self._file = file
        self._cache = cache
        self._table_id = table_id if table_id is not None else id(self)
        self._checksummer = get_checksummer(self.options.checksum)

        size = file.size()
        if size < FOOTER_SIZE:
            raise TableCorruption(f"file too small for a footer: {size} bytes")
        footer = Footer.decode(file.pread(size - FOOTER_SIZE, FOOTER_SIZE))
        self.num_entries = footer.num_entries
        self._index = Block(
            self._load_block(footer.index_handle, cacheable=False),
            compare=internal_compare,
        )
        filter_blob = self._load_block(footer.filter_handle, cacheable=False)
        self._bloom = BloomFilter(filter_blob) if filter_blob else None
        # Index entries in file order: (separator_key, handle).
        self._index_entries = [
            (k, BlockHandle.decode(v)[0]) for k, v in self._index
        ]

    @property
    def file(self) -> ReadableFile:
        """The underlying file (compaction reads blocks through it)."""
        return self._file

    # -- block access ------------------------------------------------
    def _load_block(self, handle: BlockHandle, cacheable: bool = True) -> bytes:
        if cacheable and self._cache is not None:
            key = (self._table_id, handle.offset)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        stored = read_block(self._file, handle)
        raw = decode_block_contents(
            stored, self._checksummer, verify=self.options.paranoid_checks
        )
        if cacheable and self._cache is not None:
            self._cache.put((self._table_id, handle.offset), raw)
        return raw

    def _block_at(self, handle: BlockHandle) -> Block:
        return Block(self._load_block(handle), compare=internal_compare)

    def num_blocks(self) -> int:
        return len(self._index_entries)

    def block_handles(self) -> list[BlockHandle]:
        """Data-block locations in key order (compaction input)."""
        return [h for _, h in self._index_entries]

    def block_separators(self) -> list[bytes]:
        """Index separator keys, aligned with :meth:`block_handles`."""
        return [k for k, _ in self._index_entries]

    # -- lookups -----------------------------------------------------
    def _find_block_index(self, ikey: bytes) -> Optional[int]:
        """First block whose separator >= ikey (may contain ikey)."""
        entries = self._index_entries
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if internal_compare(entries[mid][0], ikey) < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo if lo < len(entries) else None

    def get(self, ikey: bytes) -> Optional[tuple[bytes, bytes]]:
        """First entry with internal key >= ``ikey``, or None.

        The caller (DB read path) checks whether the returned entry's
        user key actually matches.
        """
        if self._bloom is not None and not self._bloom.may_contain(ikey[:-8]):
            return None
        idx = self._find_block_index(ikey)
        if idx is None:
            return None
        block = self._block_at(self._index_entries[idx][1])
        for key, value in block.seek(ikey):
            return key, value
        # The target sorts after everything in this block; try the next.
        if idx + 1 < len(self._index_entries):
            block = self._block_at(self._index_entries[idx + 1][1])
            for key, value in block:
                return key, value
        return None

    # -- iteration ---------------------------------------------------
    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        for _, handle in self._index_entries:
            yield from self._block_at(handle)

    def iter_from(self, ikey: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Entries with internal key >= ``ikey``, in order."""
        idx = self._find_block_index(ikey)
        if idx is None:
            return
        block = self._block_at(self._index_entries[idx][1])
        yield from block.seek(ikey)
        for _, handle in self._index_entries[idx + 1 :]:
            yield from self._block_at(handle)

    def iter_reverse(self) -> Iterator[tuple[bytes, bytes]]:
        """All entries in descending internal-key order."""
        for _, handle in reversed(self._index_entries):
            yield from self._block_at(handle).iter_reverse()

    def iter_reverse_from(self, ikey: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Entries with internal key <= ``ikey``, descending."""
        idx = self._find_block_index(ikey)
        if idx is None:
            # Everything sorts before ikey: full reverse stream.
            yield from self.iter_reverse()
            return
        block = self._block_at(self._index_entries[idx][1])
        yield from block.seek_reverse(ikey)
        for _, handle in reversed(self._index_entries[:idx]):
            yield from self._block_at(handle).iter_reverse()

    def close(self) -> None:
        self._file.close()

