"""On-disk SSTable framing shared by the builder and reader.

An SSTable file is::

    [data block + trailer] * N
    [filter block + trailer]
    [index block + trailer]
    [footer]

Each block trailer is 5 bytes: 1-byte compression type + 4-byte masked
CRC of the stored payload *including* the type byte.  The footer is a
fixed 48 bytes: filter handle + index handle (varint-encoded, zero
padded to 40 bytes) followed by an 8-byte magic number.

This framing is what the compaction pipeline's S1/S2/S3 (read,
checksum, decompress) and S5/S6/S7 (compress, re-checksum, write)
steps produce and consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codec.checksum import Checksummer
from ..codec.compress import Codec, get_codec
from ..codec.varint import (
    decode_varint64,
    encode_varint64,
    get_fixed32,
    get_fixed64,
    put_fixed32,
    put_fixed64,
)
from ..devices.vfs import ReadableFile

__all__ = [
    "BLOCK_TRAILER_SIZE",
    "FOOTER_SIZE",
    "TABLE_MAGIC",
    "COMPRESSION_TAGS",
    "TAG_TO_CODEC",
    "BlockHandle",
    "Footer",
    "TableCorruption",
    "encode_block_contents",
    "decode_block_contents",
]

BLOCK_TRAILER_SIZE = 5
FOOTER_SIZE = 48
TABLE_MAGIC = 0x7075_6C73_6564_6273  # "pulsedbs"

COMPRESSION_TAGS = {"null": 0, "lz77": 1, "zlib": 2}
TAG_TO_CODEC = {v: k for k, v in COMPRESSION_TAGS.items()}


class TableCorruption(ValueError):
    """Raised when SSTable framing fails validation."""


@dataclass(frozen=True)
class BlockHandle:
    """Location of a block within the file (offset/size of payload)."""

    offset: int
    size: int

    def encode(self) -> bytes:
        return encode_varint64(self.offset) + encode_varint64(self.size)

    @classmethod
    def decode(cls, buf: bytes, pos: int = 0) -> tuple["BlockHandle", int]:
        offset, pos = decode_varint64(buf, pos)
        size, pos = decode_varint64(buf, pos)
        return cls(offset, size), pos


@dataclass(frozen=True)
class Footer:
    """Fixed-size table footer."""

    filter_handle: BlockHandle
    index_handle: BlockHandle
    num_entries: int

    def encode(self) -> bytes:
        body = self.filter_handle.encode() + self.index_handle.encode()
        if len(body) > 32:
            raise TableCorruption("footer handles too large")
        body += b"\x00" * (32 - len(body))
        return body + put_fixed64(self.num_entries) + put_fixed64(TABLE_MAGIC)

    @classmethod
    def decode(cls, buf: bytes) -> "Footer":
        if len(buf) != FOOTER_SIZE:
            raise TableCorruption(f"footer must be {FOOTER_SIZE} bytes")
        if get_fixed64(buf, 40) != TABLE_MAGIC:
            raise TableCorruption("bad table magic (not an SSTable?)")
        filter_handle, pos = BlockHandle.decode(buf, 0)
        index_handle, _ = BlockHandle.decode(buf, pos)
        num_entries = get_fixed64(buf, 32)
        return cls(filter_handle, index_handle, num_entries)


def encode_block_contents(
    raw: bytes, codec: Codec, checksummer: Checksummer
) -> bytes:
    """Compress ``raw`` and attach the 5-byte trailer.

    Compression is skipped (tag ``null``) when it does not shrink the
    payload, mirroring LevelDB's 12.5 %-savings heuristic simplified to
    "must strictly shrink".
    """
    compressed = codec.compress(raw)
    if codec.name != "null" and len(compressed) < len(raw):
        payload, tag = compressed, COMPRESSION_TAGS[codec.name]
    else:
        payload, tag = raw, COMPRESSION_TAGS["null"]
    crc = checksummer.masked(payload + bytes([tag]))
    return payload + bytes([tag]) + put_fixed32(crc)


def decode_block_contents(
    stored: bytes, checksummer: Checksummer, verify: bool = True
) -> bytes:
    """Verify trailer checksum, strip it, and decompress (S2 + S3)."""
    if len(stored) < BLOCK_TRAILER_SIZE:
        raise TableCorruption("block shorter than trailer")
    payload = stored[:-BLOCK_TRAILER_SIZE]
    tag = stored[-BLOCK_TRAILER_SIZE]
    crc = get_fixed32(stored, len(stored) - 4)
    if verify and not checksummer.verify(payload + bytes([tag]), crc):
        raise TableCorruption("block checksum mismatch")
    try:
        codec_name = TAG_TO_CODEC[tag]
    except KeyError:
        raise TableCorruption(f"unknown compression tag {tag}") from None
    return get_codec(codec_name).decompress(payload)


def read_block(
    file: ReadableFile, handle: BlockHandle
) -> bytes:
    """Read a block's stored bytes (payload + trailer) from a file (S1)."""
    stored = file.pread(handle.offset, handle.size + BLOCK_TRAILER_SIZE)
    if len(stored) != handle.size + BLOCK_TRAILER_SIZE:
        raise TableCorruption(
            f"short block read at offset {handle.offset}: "
            f"wanted {handle.size + BLOCK_TRAILER_SIZE}, got {len(stored)}"
        )
    return stored
