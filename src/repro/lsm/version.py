"""Level metadata: which SSTables live where.

A :class:`Version` is the immutable-ish snapshot of the tree shape —
per level, the list of :class:`FileMetaData` in key order.  Level 0
files may overlap (each is a dumped memtable); levels >= 1 hold
disjoint key ranges, the invariant that makes the paper's sub-task
partitioning legal ("the key ranges of different data blocks in the
same component do not overlap, there is no data dependency among
them").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .ikey import internal_compare
from .options import Options

__all__ = ["FileMetaData", "Version"]


@dataclass
class FileMetaData:
    """One SSTable's bookkeeping entry."""

    number: int
    file_size: int
    smallest: bytes  # internal keys
    largest: bytes
    file_name: Optional[str] = None  # defaults to the standard pattern

    @property
    def name(self) -> str:
        return self.file_name if self.file_name is not None else sstable_name(
            self.number
        )

    def overlaps(self, smallest_user: Optional[bytes], largest_user: Optional[bytes]) -> bool:
        """Does this file's user-key range intersect [smallest, largest]?

        ``None`` bounds are infinite.
        """
        file_small = self.smallest[:-8]
        file_large = self.largest[:-8]
        if largest_user is not None and file_small > largest_user:
            return False
        if smallest_user is not None and file_large < smallest_user:
            return False
        return True


def sstable_name(number: int) -> str:
    return f"{number:06d}.sst"


class Version:
    """Tree shape: files per level plus invariant checking."""

    def __init__(self, options: Options) -> None:
        self.options = options
        self.files: list[list[FileMetaData]] = [
            [] for _ in range(options.num_levels)
        ]
        #: Replication fencing epoch (bumped by ``dbtool promote``);
        #: persisted via the manifest's REPL_EPOCH edit tag.
        self.repl_epoch = 0

    # -- mutation (the DB applies edits under its own lock) ----------
    def add_file(self, level: int, meta: FileMetaData) -> None:
        if not 0 <= level < self.options.num_levels:
            raise ValueError(f"level {level} out of range")
        lst = self.files[level]
        if level == 0:
            lst.append(meta)  # L0 kept in arrival order (newest last)
        else:
            # Insert preserving key order; overlap is an invariant error.
            idx = 0
            while idx < len(lst) and internal_compare(
                lst[idx].smallest, meta.smallest
            ) < 0:
                idx += 1
            lst.insert(idx, meta)

    def remove_file(self, level: int, number: int) -> FileMetaData:
        lst = self.files[level]
        for i, meta in enumerate(lst):
            if meta.number == number:
                return lst.pop(i)
        raise KeyError(f"file {number} not at level {level}")

    # -- queries ------------------------------------------------------
    def num_files(self, level: int) -> int:
        return len(self.files[level])

    def level_bytes(self, level: int) -> int:
        return sum(f.file_size for f in self.files[level])

    def total_bytes(self) -> int:
        return sum(self.level_bytes(lv) for lv in range(self.options.num_levels))

    def all_files(self) -> list[tuple[int, FileMetaData]]:
        return [
            (level, meta)
            for level in range(self.options.num_levels)
            for meta in self.files[level]
        ]

    def files_for_get(self, user_key: bytes) -> list[tuple[int, FileMetaData]]:
        """Files that may hold ``user_key``, newest-first search order.

        L0 newest→oldest (all overlapping candidates), then at most one
        file per deeper level.
        """
        out: list[tuple[int, FileMetaData]] = []
        for meta in reversed(self.files[0]):
            if meta.overlaps(user_key, user_key):
                out.append((0, meta))
        for level in range(1, self.options.num_levels):
            meta = self._find_in_level(level, user_key)
            if meta is not None:
                out.append((level, meta))
        return out

    def _find_in_level(self, level: int, user_key: bytes) -> Optional[FileMetaData]:
        lst = self.files[level]
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid].largest[:-8] < user_key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(lst) and lst[lo].overlaps(user_key, user_key):
            return lst[lo]
        return None

    def overlapping_files(
        self,
        level: int,
        smallest_user: Optional[bytes],
        largest_user: Optional[bytes],
    ) -> list[FileMetaData]:
        """Files at ``level`` intersecting a user-key range."""
        return [
            meta
            for meta in self.files[level]
            if meta.overlaps(smallest_user, largest_user)
        ]

    def check_invariants(self) -> None:
        """Raise AssertionError if level ordering invariants are broken."""
        for level in range(1, self.options.num_levels):
            lst = self.files[level]
            for a, b in zip(lst, lst[1:]):
                assert internal_compare(a.largest, b.smallest) < 0, (
                    f"level {level}: {a.number} overlaps {b.number}"
                )

    def describe(self) -> str:
        """Human-readable tree shape (for logs and debugging)."""
        lines = []
        for level in range(self.options.num_levels):
            if self.files[level]:
                sizes = ", ".join(
                    f"#{m.number}:{m.file_size // 1024}K" for m in self.files[level]
                )
                lines.append(f"L{level}({len(self.files[level])}): {sizes}")
        return "\n".join(lines) or "(empty)"
