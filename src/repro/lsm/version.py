"""Level metadata: which SSTables live where.

A :class:`Version` is the immutable-ish snapshot of the tree shape —
per level, the list of :class:`FileMetaData` in key order.  Level 0
files may overlap (each is a dumped memtable); levels >= 1 hold
disjoint key ranges *within a sorted run*, the invariant that makes
the paper's sub-task partitioning legal ("the key ranges of different
data blocks in the same component do not overlap, there is no data
dependency among them").

Leveled stores keep exactly one run per level (run id 0), which is the
classic LevelDB shape.  Tiered / lazy-leveled policies (Sarkar et al.,
PAPERS.md) stack multiple sorted runs on one level; runs are ordered
by run id, and a higher run id strictly shadows lower ones per key
(runs are installed in sequence-number order, exactly like L0 files).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .ikey import internal_compare
from .options import Options

__all__ = ["FileMetaData", "Version"]


@dataclass
class FileMetaData:
    """One SSTable's bookkeeping entry."""

    number: int
    file_size: int
    smallest: bytes  # internal keys
    largest: bytes
    file_name: Optional[str] = None  # defaults to the standard pattern
    #: Sorted-run id within the level.  Leveled levels use run 0 only;
    #: tiered levels stack runs, newer run ids shadow older ones.
    run: int = 0

    @property
    def name(self) -> str:
        return self.file_name if self.file_name is not None else sstable_name(
            self.number
        )

    def overlaps(self, smallest_user: Optional[bytes], largest_user: Optional[bytes]) -> bool:
        """Does this file's user-key range intersect [smallest, largest]?

        ``None`` bounds are infinite.
        """
        file_small = self.smallest[:-8]
        file_large = self.largest[:-8]
        if largest_user is not None and file_small > largest_user:
            return False
        if smallest_user is not None and file_large < smallest_user:
            return False
        return True


def sstable_name(number: int) -> str:
    return f"{number:06d}.sst"


class Version:
    """Tree shape: files per level plus invariant checking."""

    def __init__(self, options: Options) -> None:
        self.options = options
        self.files: list[list[FileMetaData]] = [
            [] for _ in range(options.num_levels)
        ]
        #: Replication fencing epoch (bumped by ``dbtool promote``);
        #: persisted via the manifest's REPL_EPOCH edit tag.
        self.repl_epoch = 0
        #: Canonical compaction-policy spec this store was created
        #: with (persisted via the manifest's POLICY edit tag); None
        #: on legacy manifests, which means classic leveled.
        self.policy_spec: Optional[str] = None

    # -- mutation (the DB applies edits under its own lock) ----------
    def add_file(self, level: int, meta: FileMetaData) -> None:
        if not 0 <= level < self.options.num_levels:
            raise ValueError(f"level {level} out of range")
        lst = self.files[level]
        if level == 0:
            lst.append(meta)  # L0 kept in arrival order (newest last)
        else:
            # Insert preserving (run, key) order; overlap within a run
            # is an invariant error.
            idx = 0
            while idx < len(lst) and (
                lst[idx].run < meta.run
                or (
                    lst[idx].run == meta.run
                    and internal_compare(lst[idx].smallest, meta.smallest) < 0
                )
            ):
                idx += 1
            lst.insert(idx, meta)

    def remove_file(self, level: int, number: int) -> FileMetaData:
        lst = self.files[level]
        for i, meta in enumerate(lst):
            if meta.number == number:
                return lst.pop(i)
        raise KeyError(f"file {number} not at level {level}")

    # -- queries ------------------------------------------------------
    def num_files(self, level: int) -> int:
        return len(self.files[level])

    def runs(self, level: int) -> list[tuple[int, list[FileMetaData]]]:
        """Sorted runs at ``level`` as ``(run_id, files)``, oldest run
        first.  L0 treats every file as its own run (arrival order)."""
        if level == 0:
            return [(m.number, [m]) for m in self.files[0]]
        out: list[tuple[int, list[FileMetaData]]] = []
        for meta in self.files[level]:  # already (run, key) sorted
            if out and out[-1][0] == meta.run:
                out[-1][1].append(meta)
            else:
                out.append((meta.run, [meta]))
        return out

    def num_runs(self, level: int) -> int:
        if level == 0:
            return len(self.files[0])
        return len({meta.run for meta in self.files[level]})

    def max_run_id(self, level: int) -> int:
        """Largest run id in use at ``level`` (-1 when empty)."""
        lst = self.files[level]
        return lst[-1].run if lst else -1

    def level_bytes(self, level: int) -> int:
        return sum(f.file_size for f in self.files[level])

    def total_bytes(self) -> int:
        return sum(self.level_bytes(lv) for lv in range(self.options.num_levels))

    def all_files(self) -> list[tuple[int, FileMetaData]]:
        return [
            (level, meta)
            for level in range(self.options.num_levels)
            for meta in self.files[level]
        ]

    def files_for_get(self, user_key: bytes) -> list[tuple[int, FileMetaData]]:
        """Files that may hold ``user_key``, newest-first search order.

        L0 newest→oldest (all overlapping candidates), then per deeper
        level at most one file per sorted run, newest run first (newer
        runs shadow older ones, same argument as L0 files).
        """
        out: list[tuple[int, FileMetaData]] = []
        for meta in reversed(self.files[0]):
            if meta.overlaps(user_key, user_key):
                out.append((0, meta))
        for level in range(1, self.options.num_levels):
            lst = self.files[level]
            if not lst:
                continue
            for _run_id, run_files in reversed(self.runs(level)):
                meta = self._find_in_run(run_files, user_key)
                if meta is not None:
                    out.append((level, meta))
        return out

    @staticmethod
    def _find_in_run(
        run_files: list[FileMetaData], user_key: bytes
    ) -> Optional[FileMetaData]:
        lo, hi = 0, len(run_files)
        while lo < hi:
            mid = (lo + hi) // 2
            if run_files[mid].largest[:-8] < user_key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(run_files) and run_files[lo].overlaps(user_key, user_key):
            return run_files[lo]
        return None

    def overlapping_files(
        self,
        level: int,
        smallest_user: Optional[bytes],
        largest_user: Optional[bytes],
    ) -> list[FileMetaData]:
        """Files at ``level`` intersecting a user-key range."""
        return [
            meta
            for meta in self.files[level]
            if meta.overlaps(smallest_user, largest_user)
        ]

    def check_invariants(self) -> None:
        """Raise AssertionError if level ordering invariants are broken.

        Within each sorted run at levels >= 1, files must be key-sorted
        and disjoint.  Distinct runs on the same level may overlap
        freely (that is what tiering is).
        """
        for level in range(1, self.options.num_levels):
            lst = self.files[level]
            for a, b in zip(lst, lst[1:]):
                assert a.run <= b.run, (
                    f"level {level}: run order broken at {a.number}/{b.number}"
                )
                if a.run != b.run:
                    continue
                assert internal_compare(a.largest, b.smallest) < 0, (
                    f"level {level} run {a.run}: "
                    f"{a.number} overlaps {b.number}"
                )

    def describe(self) -> str:
        """Human-readable tree shape (for logs and debugging)."""
        lines = []
        for level in range(self.options.num_levels):
            if self.files[level]:
                sizes = ", ".join(
                    f"#{m.number}:{m.file_size // 1024}K" for m in self.files[level]
                )
                runs = self.num_runs(level)
                lines.append(
                    f"L{level}({len(self.files[level])} files, "
                    f"{runs} run{'s' if runs != 1 else ''}): {sizes}"
                )
        return "\n".join(lines) or "(empty)"
