"""Bloom filter for SSTable point lookups.

bLSM-style bloom filters "avoid disk I/Os for the level which does not
contain the sought-after key" (paper §V); LevelDB gained the same via
its FilterPolicy.  We implement the double-hashing construction LevelDB
uses: one base hash, a derived delta, and k probes ``h + i*delta``.

The filter serialises to ``bit_array || k`` (last byte is the probe
count), so a reader needs no out-of-band parameters.
"""

from __future__ import annotations

__all__ = ["bloom_hash", "BloomFilterBuilder", "BloomFilter"]


def bloom_hash(key: bytes, seed: int = 0xBC9F1D34) -> int:
    """Murmur-flavoured 32-bit hash (LevelDB's Hash())."""
    m = 0xC6A4A793
    h = (seed ^ (len(key) * m)) & 0xFFFFFFFF
    i = 0
    n = len(key)
    while i + 4 <= n:
        w = key[i] | key[i + 1] << 8 | key[i + 2] << 16 | key[i + 3] << 24
        h = (h + w) & 0xFFFFFFFF
        h = (h * m) & 0xFFFFFFFF
        h ^= h >> 16
        i += 4
    rest = n - i
    if rest == 3:
        h = (h + (key[i + 2] << 16)) & 0xFFFFFFFF
    if rest >= 2:
        h = (h + (key[i + 1] << 8)) & 0xFFFFFFFF
    if rest >= 1:
        h = (h + key[i]) & 0xFFFFFFFF
        h = (h * m) & 0xFFFFFFFF
        h ^= h >> 24
    return h


class BloomFilterBuilder:
    """Accumulates keys, then emits an immutable filter blob."""

    def __init__(self, bits_per_key: int = 10) -> None:
        if bits_per_key < 0:
            raise ValueError("bits_per_key must be >= 0")
        self.bits_per_key = bits_per_key
        # k = bits_per_key * ln(2), clamped like LevelDB.
        self.k = max(1, min(30, int(bits_per_key * 0.69)))
        self._hashes: list[int] = []

    def add(self, key: bytes) -> None:
        self._hashes.append(bloom_hash(key))

    def add_hash(self, h: int) -> None:
        """Add a pre-computed :func:`bloom_hash` value.

        The pipelined compaction computes key hashes in its compute
        stage (S4) and ships them with each block artifact, so the
        write stage can build the table filter without re-touching
        keys.
        """
        self._hashes.append(h & 0xFFFFFFFF)

    def __len__(self) -> int:
        return len(self._hashes)

    def finish(self) -> bytes:
        n = len(self._hashes)
        bits = max(64, n * self.bits_per_key)
        nbytes = (bits + 7) // 8
        bits = nbytes * 8
        arr = bytearray(nbytes)
        for h in self._hashes:
            delta = ((h >> 17) | (h << 15)) & 0xFFFFFFFF
            for _ in range(self.k):
                pos = h % bits
                arr[pos // 8] |= 1 << (pos % 8)
                h = (h + delta) & 0xFFFFFFFF
        arr.append(self.k)
        return bytes(arr)


class BloomFilter:
    """Reader side: membership test over a serialized filter."""

    def __init__(self, blob: bytes) -> None:
        if len(blob) < 2:
            # Degenerate filter: treat as match-all (never lies negative).
            self._bits = 0
            self._data = b""
            self._k = 0
            return
        self._k = blob[-1]
        self._data = blob[:-1]
        self._bits = len(self._data) * 8

    def may_contain(self, key: bytes) -> bool:
        """False means *definitely absent*; True means maybe present."""
        if self._bits == 0 or self._k == 0 or self._k > 30:
            return True
        h = bloom_hash(key)
        delta = ((h >> 17) | (h << 15)) & 0xFFFFFFFF
        for _ in range(self._k):
            pos = h % self._bits
            if not self._data[pos // 8] & (1 << (pos % 8)):
                return False
            h = (h + delta) & 0xFFFFFFFF
        return True
