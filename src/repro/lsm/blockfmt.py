"""SSTable block format: prefix-compressed sorted entries.

Layout (LevelDB-compatible in structure):

* entries: ``varint shared | varint non_shared | varint value_len |
  key_delta | value`` — each key stores only its suffix beyond the
  prefix shared with the previous key.
* every ``restart_interval`` entries a *restart point* stores the full
  key; the block tail holds the restart offsets (fixed32 array) and
  their count (fixed32), enabling binary search.

Keys are ordered by a pluggable three-way ``compare`` (default:
bytewise).  Table blocks pass the internal-key comparator, because two
internal keys with the same user key sort by *descending* sequence,
which bytewise comparison does not honour.

On disk each block is followed by a 5-byte trailer written by the table
builder: 1-byte compression type + 4-byte masked checksum of the
(compressed) payload — that trailer is handled in
:mod:`repro.lsm.table_format`, not here.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..codec.varint import (
    decode_varint32,
    encode_varint32,
    get_fixed32,
    put_fixed32,
)

__all__ = ["BlockBuilder", "Block", "BlockCorruption", "bytewise_compare"]

Comparator = Callable[[bytes, bytes], int]


def bytewise_compare(a: bytes, b: bytes) -> int:
    """Default three-way bytewise comparison."""
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


class BlockCorruption(ValueError):
    """Raised when a block's structure cannot be parsed."""


class BlockBuilder:
    """Accumulates sorted entries into the block wire format."""

    def __init__(
        self,
        restart_interval: int = 16,
        compare: Optional[Comparator] = None,
    ) -> None:
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self.restart_interval = restart_interval
        self.compare = compare or bytewise_compare
        self._buf = bytearray()
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._n_entries = 0

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry; keys must arrive in strictly increasing order."""
        if self._n_entries and self.compare(key, self._last_key) <= 0:
            raise ValueError(
                f"keys out of order: {key!r} after {self._last_key!r}"
            )
        if self._counter >= self.restart_interval:
            self._restarts.append(len(self._buf))
            self._counter = 0
            shared = 0
        else:
            shared = _shared_prefix_len(self._last_key, key)
        non_shared = len(key) - shared
        self._buf += encode_varint32(shared)
        self._buf += encode_varint32(non_shared)
        self._buf += encode_varint32(len(value))
        self._buf += key[shared:]
        self._buf += value
        self._last_key = key
        self._counter += 1
        self._n_entries += 1

    def finish(self) -> bytes:
        """Seal and return the encoded block."""
        out = bytearray(self._buf)
        for r in self._restarts:
            out += put_fixed32(r)
        out += put_fixed32(len(self._restarts))
        return bytes(out)

    def reset(self) -> None:
        self._buf.clear()
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._n_entries = 0

    @property
    def empty(self) -> bool:
        return self._n_entries == 0

    @property
    def num_entries(self) -> int:
        return self._n_entries

    @property
    def last_key(self) -> bytes:
        return self._last_key

    def current_size_estimate(self) -> int:
        """Encoded size if finished now."""
        return len(self._buf) + 4 * len(self._restarts) + 4


def _shared_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


class Block:
    """A parsed, immutable block supporting iteration and seek."""

    def __init__(self, data: bytes, compare: Optional[Comparator] = None) -> None:
        if len(data) < 4:
            raise BlockCorruption("block shorter than restart count")
        self.compare = compare or bytewise_compare
        n_restarts = get_fixed32(data, len(data) - 4)
        restart_end = len(data) - 4
        restart_start = restart_end - 4 * n_restarts
        if n_restarts < 1 or restart_start < 0:
            raise BlockCorruption(f"bad restart count {n_restarts}")
        self._data = data
        self._restarts = [
            get_fixed32(data, restart_start + 4 * i) for i in range(n_restarts)
        ]
        self._entries_end = restart_start
        if self._restarts and self._restarts[0] != 0:
            raise BlockCorruption("first restart must be 0")

    def _parse_entry(self, pos: int, prev_key: bytes) -> tuple[bytes, bytes, int]:
        """Decode entry at ``pos`` → (key, value, next_pos)."""
        try:
            shared, pos = decode_varint32(self._data, pos)
            non_shared, pos = decode_varint32(self._data, pos)
            value_len, pos = decode_varint32(self._data, pos)
        except ValueError as exc:
            raise BlockCorruption(str(exc)) from None
        if shared > len(prev_key):
            raise BlockCorruption("shared prefix longer than previous key")
        key_end = pos + non_shared
        value_end = key_end + value_len
        if value_end > self._entries_end:
            raise BlockCorruption("entry overruns block")
        key = prev_key[:shared] + self._data[pos:key_end]
        value = self._data[key_end:value_end]
        return key, value, value_end

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        pos = 0
        key = b""
        while pos < self._entries_end:
            key, value, pos = self._parse_entry(pos, key)
            yield key, value

    def _restart_key(self, index: int) -> bytes:
        key, _, _ = self._parse_entry(self._restarts[index], b"")
        return key

    def seek(self, target: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries with key >= ``target`` (comparator order)."""
        # Binary-search restarts for the last restart key < target.
        lo, hi = 0, len(self._restarts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.compare(self._restart_key(mid), target) < 0:
                lo = mid
            else:
                hi = mid - 1
        pos = self._restarts[lo]
        key = b""
        while pos < self._entries_end:
            key, value, nxt = self._parse_entry(pos, key)
            if self.compare(key, target) >= 0:
                yield key, value
                pos = nxt
                # From here just stream the rest.
                while pos < self._entries_end:
                    key, value, pos = self._parse_entry(pos, key)
                    yield key, value
                return
            pos = nxt

    def iter_reverse(self) -> Iterator[tuple[bytes, bytes]]:
        """Entries in descending key order.

        Blocks are small (the 4 KB default holds a few dozen entries),
        so the straightforward materialise-and-reverse is cheaper and
        simpler than restart-hopping backward cursors.
        """
        entries = list(self)
        return reversed(entries)

    def seek_reverse(self, target: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Entries with key <= ``target``, in descending order."""
        for key, value in self.iter_reverse():
            if self.compare(key, target) <= 0:
                yield key, value

    def num_restarts(self) -> int:
        return len(self._restarts)

    def first_key(self) -> Optional[bytes]:
        if self._entries_end == 0:
            return None
        key, _, _ = self._parse_entry(0, b"")
        return key
