"""Figure 9: step breakdown vs sub-task size (64 KB - 4 MB)."""

import pytest
from conftest import run_once

from repro.bench.experiments import fig09


@pytest.mark.parametrize("device", ["hdd", "ssd"])
def test_fig09_subtask_size(benchmark, show, device):
    result = run_once(benchmark, fig09.run, device=device)
    show(result)
    read_ms_mb = result.column("read ms/MB")
    write_ms_mb = result.column("write ms/MB")
    # "The execution time of step write decreases as the sub-task size
    # increases" (per byte): non-increasing on both devices.
    assert all(a >= b - 1e-9 for a, b in zip(write_ms_mb, write_ms_mb[1:]))
    # Reads amortise their positioning/latency cost the same way.
    assert all(a >= b - 1e-9 for a, b in zip(read_ms_mb, read_ms_mb[1:]))
    if device == "hdd":
        # Seek-dominated small sub-tasks: read overwhelmingly dominates.
        first_read_pct = result.column("read%")[0]
        assert first_read_pct > 60.0
        # At every size the HDD stays I/O-bound (read% stays largest
        # single I/O share and read+write > compute).
        for row in result.rows:
            io = row[1] + row[3]
            assert io > row[2]
    else:
        # On SSD the large-sub-task regime is CPU-bound (Fig 6b).
        assert result.column("compute%")[-1] > 60.0
