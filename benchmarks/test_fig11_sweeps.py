"""Figure 11: bandwidth vs sub-task size (a) and compaction size (b)."""

from conftest import run_once

from repro.bench.experiments import fig11


def test_fig11a_subtask_size_sweep(benchmark, show):
    result = run_once(benchmark, fig11.run_subtask_sweep)
    show(result)
    labels = result.column("subtask")
    scp = result.column("scp MB/s")
    pcp = result.column("pcp MB/s")
    # "While the sub-task size increases the compaction bandwidth of
    # SCP increases" (monotone non-decreasing).
    assert all(a <= b + 1e-9 for a, b in zip(scp, scp[1:]))
    # "The compaction bandwidth of PCP first increases and then
    # decreases ... PCP using 512KB sub-task size is the highest."
    peak = labels[pcp.index(max(pcp))]
    assert peak == "512K"
    assert pcp[0] < max(pcp)
    assert pcp[-1] < max(pcp)
    # At the largest size there is a single sub-task: no pipelining.
    assert pcp[-1] == scp[-1]
    # PCP >= SCP at every size.
    assert all(p >= s - 1e-9 for p, s in zip(pcp, scp))


def test_fig11b_compaction_size_sweep(benchmark, show):
    result = run_once(benchmark, fig11.run_compaction_sweep)
    show(result)
    scp = result.column("scp MB/s")
    pcp = result.column("pcp MB/s")
    speedup = result.column("speedup")
    # "For SCP the compaction bandwidth does not increase as the
    # compaction size increases" (flat within 1%).
    assert max(scp) - min(scp) < 0.01 * max(scp)
    # "The compaction bandwidth of PCP keeps on increasing until the
    # sub-task count reaches ~6": strong growth up to 6 sub-tasks, then
    # marginal (<3% per further step).
    assert all(a < b for a, b in zip(pcp[:6], pcp[1:6]))
    gain_to_6 = pcp[5] / pcp[0]
    assert gain_to_6 > 1.4
    for a, b in zip(pcp[5:], pcp[6:]):
        assert (b - a) / a < 0.03
    # "PCP can improve the compaction bandwidth for all ... compaction
    # sizes" beyond one sub-task.
    assert all(x > 1.0 for x in speedup[1:])
