"""Shared helpers for the figure-regeneration benchmarks.

Each module regenerates one table/figure of the paper: it runs the
experiment driver once (timed via pytest-benchmark's pedantic mode so
``--benchmark-only`` executes it), prints the regenerated series, and
asserts the paper's qualitative claims — who wins, by roughly what
factor, and where the knees fall.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def show():
    """Print an ExperimentResult so `pytest -s` shows the regenerated
    figure; captured otherwise."""

    def _show(result) -> None:
        print()
        print(result.render())

    return _show
