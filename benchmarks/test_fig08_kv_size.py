"""Figure 8: step breakdown vs key-value size (64 B - 1024 B)."""

import pytest
from conftest import run_once

from repro.bench.experiments import fig08


@pytest.mark.parametrize("device", ["hdd", "ssd"])
def test_fig08_kv_size(benchmark, show, device):
    result = run_once(benchmark, fig08.run, device=device)
    show(result)
    sort_pct = result.column("sort%")
    crc_pct = result.column("crc%")
    recrc_pct = result.column("re-crc%")
    decomp_pct = result.column("decomp%")
    comp_pct = result.column("comp%")
    # "As the key-value size increases step sort takes less time."
    assert all(a > b for a, b in zip(sort_pct, sort_pct[1:]))
    # "Either step crc or step re-crc takes less than 5%."
    assert all(v < 5.0 for v in crc_pct)
    assert all(v < 5.0 for v in recrc_pct)
    # "Step decomp takes the least amount of time" among the
    # byte-proportional CPU steps (sort eventually undercuts it at
    # very large entries, where it processes almost no entries), and
    # "step comp is almost the most costly" — strictly the most costly
    # CPU step once sort shrinks (kv >= 128).
    for row_i in range(len(sort_pct)):
        per_byte = {
            "crc": crc_pct[row_i],
            "decomp": decomp_pct[row_i],
            "comp": comp_pct[row_i],
            "re-crc": recrc_pct[row_i],
        }
        assert min(per_byte, key=per_byte.get) == "decomp"
        if row_i >= 1:
            cpu = dict(per_byte, sort=sort_pct[row_i])
            assert max(cpu, key=cpu.get) == "comp"
