"""Robustness of the figures to recalibration.

Instead of the paper-calibrated constants, build the cost model by
*measuring this machine's actual pure-Python codecs*
(`CostModel.calibrate`) and re-run the core analytical/scheduling
claims.  Pure-Python compute is orders of magnitude slower than the
paper's C++, so both device presets become deeply CPU-bound — and the
paper's structural claims must still hold: Eq 1 exact, PCP >= SCP,
Eq 2 respected as an upper bound, C-PPCP scaling until the I/O bound.
"""

import pytest
from conftest import run_once

from repro.core import (
    CostModel,
    ProcedureSpec,
    classify,
    pcp_bandwidth,
    scp_bandwidth,
    simulate_compaction,
    uniform_subtasks,
)
from repro.devices import make_device

MB = 1 << 20


def _calibrated_run():
    cm = CostModel.calibrate(sample_bytes=1 << 17)
    sizes = uniform_subtasks(8 * MB, MB)
    out = {"model": cm}
    for device in ("hdd", "ssd"):
        probe = make_device(device)
        times = cm.step_times(MB, cm.entries_for(MB), probe, probe)
        scp = simulate_compaction(
            sizes, ProcedureSpec.scp(subtask_bytes=MB), cm,
            make_device(device), None,
        ).bandwidth()
        pcp = simulate_compaction(
            sizes, ProcedureSpec.pcp(subtask_bytes=MB), cm,
            make_device(device), None,
        ).bandwidth()
        cppcp = simulate_compaction(
            sizes,
            ProcedureSpec.cppcp(k=4, subtask_bytes=MB, queue_capacity=8),
            cm, make_device(device), None,
        ).bandwidth()
        out[device] = dict(times=times, scp=scp, pcp=pcp, cppcp=cppcp)
    return out


def test_calibrated_model_preserves_structure(benchmark):
    result = run_once(benchmark, _calibrated_run)
    cm = result["model"]
    print()
    print(f"calibrated on this machine: crc {cm.checksum_s_per_byte * (1 << 20) * 1e3:.1f} ms/MB, "
          f"compress {cm.compress_s_per_byte * (1 << 20) * 1e3:.1f} ms/MB, "
          f"decompress {cm.decompress_s_per_byte * (1 << 20) * 1e3:.1f} ms/MB")
    for device in ("hdd", "ssd"):
        r = result[device]
        times = r["times"]
        print(f"{device}: {classify(times)}; scp {r['scp'] / 1e6:.2f} MB/s, "
              f"pcp {r['pcp'] / 1e6:.2f}, c-ppcp k=4 {r['cppcp'] / 1e6:.2f}")
        # Pure-Python compute dwarfs any device time: CPU-bound.
        assert classify(times) == "cpu-bound"
        # Eq 1 is exact for SCP under any calibration.
        assert r["scp"] == pytest.approx(scp_bandwidth(MB, times), rel=1e-6)
        # PCP always helps, never exceeds its Eq 2 ceiling.
        assert r["scp"] < r["pcp"] <= pcp_bandwidth(MB, times) * (1 + 1e-9)
        # With a deep CPU bottleneck, compute fan-out keeps paying.
        assert r["cppcp"] > 1.5 * r["pcp"]
