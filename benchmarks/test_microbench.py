"""Micro-benchmarks of the engine's hot paths (pytest-benchmark).

Not a paper figure: these time the substrate primitives the compaction
pipeline is built from, so regressions in the functional code are
visible independently of the virtual-time experiments.
"""

import random

import pytest

from repro.codec.checksum import crc32, crc32c_py
from repro.codec.compress import lz77_compress, lz77_decompress
from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import MemTable, Options
from repro.workload import InsertWorkload

PAYLOAD = InsertWorkload(n=0)  # unused; keeps import meaningful


def _kv_blob(size: int) -> bytes:
    out = bytearray()
    i = 0
    while len(out) < size:
        out += b"user%012d=field-value-%04d;" % (i, i % 997)
        i += 1
    return bytes(out[:size])


@pytest.fixture(scope="module")
def blob64k():
    return _kv_blob(64 * 1024)


def test_bench_crc32c_software(benchmark, blob64k):
    benchmark(crc32c_py, blob64k)


def test_bench_crc32_zlib(benchmark, blob64k):
    benchmark(crc32, blob64k)


def test_bench_lz77_compress(benchmark, blob64k):
    benchmark(lz77_compress, blob64k)


def test_bench_lz77_decompress(benchmark, blob64k):
    compressed = lz77_compress(blob64k)
    benchmark(lz77_decompress, compressed)


def test_bench_memtable_insert(benchmark):
    keys = [b"key-%08d" % random.Random(3).randrange(10**7) for _ in range(1000)]

    def insert_1000():
        mt = MemTable()
        for seq, key in enumerate(keys, 1):
            mt.put(seq, key, b"value")
        return mt

    benchmark(insert_1000)


def test_bench_memtable_get(benchmark):
    mt = MemTable()
    for i in range(10_000):
        mt.put(i + 1, b"key-%08d" % i, b"v")

    def get_100():
        for i in range(0, 10_000, 100):
            mt.get(b"key-%08d" % i)

    benchmark(get_100)


def test_bench_db_put_throughput(benchmark):
    options = Options(
        memtable_bytes=1 << 20, sstable_bytes=256 * 1024,
        level1_bytes=4 << 20, compression="zlib",
    )
    workload = list(InsertWorkload(n=2000, distribution="uniform"))

    def insert_2000():
        db = DB(MemStorage(), options)
        for key, value in workload:
            db.put(key, value)
        db.close()

    benchmark.pedantic(insert_2000, rounds=3, iterations=1)


def test_bench_db_get_after_compaction(benchmark):
    options = Options(
        memtable_bytes=64 * 1024, sstable_bytes=32 * 1024,
        level1_bytes=128 * 1024, level_multiplier=4, compression="zlib",
    )
    db = DB(MemStorage(), options)
    for key, value in InsertWorkload(n=5000, distribution="uniform", seed=7):
        db.put(key, value)
    db.flush()
    keys = [key for key, _ in InsertWorkload(n=200, distribution="uniform", seed=7)]

    def get_200():
        for key in keys:
            db.get(key)

    benchmark(get_200)
    db.close()
