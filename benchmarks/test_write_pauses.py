"""Extension: write-pause (latency tail) reduction under PCP."""

import pytest
from conftest import run_once

from repro.bench.experiments import write_pauses


def test_write_pauses(benchmark, show):
    result = run_once(benchmark, write_pauses.run, 15_000)
    show(result)
    rows = result.row_map("procedure")
    scp, pcp = rows["scp"], rows["pcp"]
    headers = list(result.headers)
    p50, p99, mx = (headers.index("p50 us"), headers.index("p99 us"),
                    headers.index("max us"))
    # The common-path latency is the WAL+memtable cost: identical
    # (up to which op lands on the percentile boundary).
    assert pcp[p50] == pytest.approx(scp[p50], rel=0.02)
    assert pcp[p99] == pytest.approx(scp[p99], rel=0.02)
    # The worst pause is a compaction; pipelining shortens it by a
    # factor comparable to the compaction-bandwidth gain.
    assert pcp[mx] < 0.75 * scp[mx]
    # Stalls don't become more frequent, just shorter.
    stalls = headers.index("ops stalled >1ms")
    assert pcp[stalls] <= scp[stalls]
