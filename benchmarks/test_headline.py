"""The paper's headline: PCP +77% bandwidth / +62% throughput; the
parallel variants push further (paper: +89% / +64%)."""

from conftest import run_once

from repro.bench.experiments import headline


def test_headline(benchmark, show):
    result = run_once(benchmark, headline.run)
    show(result)
    rows = result.row_map("procedure")
    bw_x = {k: rows[k][2] for k in rows}
    iops_x = {k: rows[k][4] for k in rows}

    # PCP vs SCP: paper +77% bandwidth (we land within [1.6, 2.0]).
    assert 1.6 <= bw_x["pcp"] <= 2.0
    # PCP vs SCP: paper +62% throughput (we land within [1.4, 1.8]),
    # and the throughput gain trails the bandwidth gain.
    assert 1.4 <= iops_x["pcp"] <= 1.8
    assert iops_x["pcp"] < bw_x["pcp"]

    # The parallel variant beats plain PCP on both metrics.  (Our
    # calibrated SSD has more write headroom above its CPU bound than
    # the authors' X25-M, so the C-PPCP margin is larger than the
    # paper's +12 points — see EXPERIMENTS.md.)
    assert bw_x["c-ppcp k=2"] > bw_x["pcp"]
    assert iops_x["c-ppcp k=2"] > iops_x["pcp"]
