"""Figure 10: system IOPS, compaction bandwidth, and PCP/SCP speedups
vs working-set size, on HDD and SSD (scaled working sets)."""

import pytest
from conftest import run_once

from repro.bench.experiments import fig10

WORKING_SETS = (10_000, 20_000, 40_000)


@pytest.mark.parametrize("device", ["hdd", "ssd"])
def test_fig10(benchmark, show, device):
    result = run_once(benchmark, fig10.run, device=device,
                      working_sets=WORKING_SETS)
    show(result)
    iops_scp = result.column("iops scp")
    iops_x = result.column("iops x")
    bw_scp = result.column("bw scp MB/s")
    bw_x = result.column("bw x")

    # "When the data set size increases the throughput ... decreases"
    # — both procedures, both devices.
    assert all(a > b for a, b in zip(iops_scp, iops_scp[1:]))
    iops_pcp = result.column("iops pcp")
    assert all(a > b for a, b in zip(iops_pcp, iops_pcp[1:]))

    # PCP wins everywhere, and by more as compaction dominates.
    assert all(x > 1.0 for x in iops_x[1:])
    assert all(x > 1.0 for x in bw_x)

    if device == "hdd":
        # Paper: IOPS +>=25%, bandwidth +>=45% on HDD (larger sets).
        assert iops_x[-1] >= 1.25
        assert max(bw_x) >= 1.45
    else:
        # Paper: IOPS +>=45%, bandwidth +>=65% on SSD. Our scaled runs
        # land slightly under the IOPS bound at small sets; require the
        # trend and the bandwidth band.
        assert iops_x[-1] >= 1.40
        assert max(bw_x) >= 1.60
        # "The compaction bandwidth on SSD does not decrease" as the
        # working set grows (within 10%).
        assert min(bw_scp) >= 0.9 * bw_scp[0]

    # The throughput gain trails the bandwidth gain (unpipelined work).
    for ix, bx in zip(iops_x, bw_x):
        assert ix < bx
