"""Figure 12: parallel pipelined compaction (S-PPCP and C-PPCP)."""

from conftest import run_once

from repro.bench.experiments import fig12


def test_fig12_sppcp_disks(benchmark, show):
    result = run_once(benchmark, fig12.run_sppcp)
    show(result)
    rows = result.row_map("disks")
    bw = {k: rows[k][1] for k in rows}
    # "The throughput increases when more disks are used" up to the
    # saturation point...
    assert bw[2] > 1.8 * bw[1]
    assert bw[4] > bw[3] > bw[2]
    assert bw[5] > bw[4]
    # "... does not increase any more when the disk count reaches 5
    # since the CPU becomes the performance bottleneck" (flat from 5,
    # within 2%).
    assert bw[6] <= bw[5] * 1.02
    assert bw[10] <= bw[5] * 1.02
    assert bw[10] >= bw[5] * 0.98


def test_fig12_cppcp_threads(benchmark, show):
    result = run_once(benchmark, fig12.run_cppcp)
    show(result)
    rows = result.row_map("threads")
    bw = {k: rows[k][1] for k in rows}
    # "The throughput increases when another thread is added."
    assert bw[2] > 1.3 * bw[1]
    # "When more threads are added ... the throughput and the
    # compaction bandwidth decrease" — synchronisation overhead.
    peak_k = max(bw, key=bw.get)
    assert peak_k <= 3  # saturates with 1-2 extra threads
    assert bw[6] < bw[peak_k]
    assert bw[8] < bw[6]  # strictly declining far past saturation
