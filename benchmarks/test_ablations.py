"""Ablations of the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.bench.experiments import ablations


def test_ablation_pipeline_depth(benchmark, show):
    """Paper §III-B/C: with k cores, widen the compute stage (C-PPCP)
    instead of deepening the pipeline."""
    result = run_once(benchmark, ablations.run_depth_ablation)
    show(result)
    rows = {row[0]: row for row in result.rows}
    # At every core budget the wide design wins.
    assert rows["c-ppcp k=2"][2] > rows["2-deep even split"][2]
    assert rows["c-ppcp k=3"][2] > rows["3-deep even split"][2]
    assert rows["c-ppcp k=5"][2] > rows["5-deep per-step"][2]
    # The per-step split is bounded by its largest step (S5): far from
    # a 5x compute scaling.
    assert rows["5-deep per-step"][3] < 2.0
    # Both parallel designs beat single-core PCP.
    assert rows["2-deep even split"][3] > 1.0
    assert rows["c-ppcp k=2"][3] > 1.0


def test_ablation_queue_capacity(benchmark, show):
    result = run_once(benchmark, ablations.run_queue_ablation)
    show(result)
    bw = result.column("bw MB/s")
    # Deeper buffering helps (fill/drain smoothing) ...
    assert bw[1] >= bw[0]
    assert bw[-1] >= bw[1]
    # ... with diminishing returns: the 4->8 step adds <5%.
    assert bw[-1] <= bw[-2] * 1.05


def test_ablation_codec(benchmark, show):
    result = run_once(benchmark, ablations.run_codec_ablation)
    show(result)
    rows = {row[0]: row for row in result.rows}
    # No compression: little CPU work; on SSD the pipeline is I/O-bound.
    assert rows["null"][1] == "io-bound"
    # Default lz77-class costs: CPU-bound (the paper's SSD case).
    assert rows["lz77 (default)"][1] == "cpu-bound"
    # Heavier codecs raise the storage-parallel saturation point:
    # cheaper CPUs want more disks before they are the bottleneck.
    assert rows["null"][5] >= rows["lz77 (default)"][5]
    # PCP helps in every regime.
    for row in result.rows:
        assert row[4] > 1.0


def test_ablation_shared_io(benchmark, show):
    result = run_once(benchmark, ablations.run_shared_io_ablation)
    show(result)
    rows = {row[0]: row[1] for row in result.rows}
    # One contended device can never beat independent servers.
    assert rows["hdd shared=True"] <= rows["hdd shared=False"]
    assert rows["ssd shared=True"] <= rows["ssd shared=False"]
    # On HDD (I/O-bound) sharing costs a lot; on SSD (CPU-bound) the
    # compute stage hides the contention.
    hdd_penalty = rows["hdd shared=True"] / rows["hdd shared=False"]
    ssd_penalty = rows["ssd shared=True"] / rows["ssd shared=False"]
    assert hdd_penalty < 0.85
    assert ssd_penalty > 0.9


def test_ablation_distribution(benchmark, show):
    """Key-arrival order controls merge work: sequential loads move
    files without merging; random arrivals pay (and pipeline) merges."""
    result = run_once(benchmark, ablations.run_distribution_ablation, 6000)
    show(result)
    rows = result.row_map("distribution")
    # Sequential: zero real merges, so no PCP gain.
    assert rows["sequential"][1] == 0
    assert rows["sequential"][5] == 1.0
    # Random arrivals merge and benefit.
    for dist in ("uniform", "zipfian"):
        assert rows[dist][1] > 0
        assert rows[dist][5] > 1.1
