"""Figure 5: SCP execution-time breakdown on HDD and SSD."""

from conftest import run_once

from repro.bench.experiments import fig05


def test_fig05_breakdown(benchmark, show):
    result = run_once(benchmark, fig05.run)
    show(result)
    rows = result.row_map("device")
    hdd = rows["hdd"]
    ssd = rows["ssd"]
    headers = list(result.headers)
    read, compute, write, io = (
        headers.index("read%"),
        headers.index("compute%"),
        headers.index("write%"),
        headers.index("io%"),
    )
    # Paper, HDD: "step read takes more than 40% ... input and output
    # take more than 60% ... HDD is the performance bottleneck".
    assert hdd[read] > 40.0
    assert hdd[io] > 60.0
    assert hdd[write] < 20.0
    # Paper, SSD: "computation steps take more than 60% ... step write
    # takes more time than step read".
    assert ssd[compute] > 60.0
    assert ssd[write] > ssd[read]
    assert ssd[io] < 40.0
