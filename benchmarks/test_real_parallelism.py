"""Wall-clock comparison of the functional backends.

Not a paper figure: quantifies what DESIGN.md states about CPython —
the *thread* backend cannot overlap pure-Python compute (GIL), while
the *process* backend achieves real parallelism when cores exist.  On
single-core machines this bench only reports the overhead.
"""

import itertools
import os

from conftest import run_once

from repro.core.procedures import ProcedureSpec, compact_tables
from repro.devices import MemStorage
from repro.lsm import KIND_VALUE, Options, Table, TableBuilder, encode_internal_key


def _inputs():
    storage = MemStorage()
    options = Options(block_bytes=4096, sstable_bytes=1 << 20,
                      compression="lz77")

    def build(name, rng, seq, tag):
        with storage.create(name) as f:
            builder = TableBuilder(f, options)
            for i in rng:
                builder.add(
                    encode_internal_key(b"key-%07d" % i, seq, KIND_VALUE),
                    b"%s-%d" % (tag, i) * 6,
                )
            builder.finish()
        return Table(storage.open(name), options)

    upper = build("u.sst", range(0, 30000, 2), 9, b"new")
    lower = build("l.sst", range(0, 30000, 3), 1, b"old")
    return storage, options, upper, lower


def _run(spec, label, storage, options, upper, lower):
    counter = itertools.count(1)
    _, stats, _ = compact_tables(
        [upper, lower], storage, options,
        file_namer=lambda: f"{label}-{next(counter):04d}.sst",
        spec=spec,
    )
    return stats


def test_backend_wall_clock(benchmark):
    storage, options, upper, lower = _inputs()
    subtask = 64 * 1024

    def compare():
        scp = _run(ProcedureSpec.scp(subtask_bytes=subtask),
                   "scp", storage, options, upper, lower)
        threads = _run(ProcedureSpec.cppcp(k=2, subtask_bytes=subtask),
                       "thr", storage, options, upper, lower)
        procs = _run(
            ProcedureSpec.cppcp(k=2, subtask_bytes=subtask, backend="process"),
            "prc", storage, options, upper, lower,
        )
        return scp, threads, procs

    scp, threads, procs = run_once(benchmark, compare)
    print()
    print(f"scp      wall: {scp.wall_seconds:.2f}s "
          f"({scp.bandwidth() / 1e6:.1f} MB/s)")
    print(f"threads  wall: {threads.wall_seconds:.2f}s "
          f"({threads.bandwidth() / 1e6:.1f} MB/s)  <- GIL-bound")
    print(f"process  wall: {procs.wall_seconds:.2f}s "
          f"({procs.bandwidth() / 1e6:.1f} MB/s)")

    # Functional counters always agree.
    assert scp.n_subtasks == threads.n_subtasks == procs.n_subtasks
    assert scp.entries_out == threads.entries_out == procs.entries_out

    cores = os.cpu_count() or 1
    if cores >= 2:
        # With real cores, process-parallel compute must beat SCP.
        assert procs.wall_seconds < scp.wall_seconds
    else:
        # Single core: the GIL claim itself — threads buy ~nothing.
        assert threads.wall_seconds > 0.7 * scp.wall_seconds
