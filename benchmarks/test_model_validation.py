"""Equations 1-7 vs simulated schedules: the ~10% fill/drain gap."""

import pytest
from conftest import run_once

from repro.bench.experiments import model_validation


def test_model_validation(benchmark, show):
    result = run_once(benchmark, model_validation.run)
    show(result)
    for row in result.rows:
        case, ideal, simulated, pct = row
        if case.endswith("/scp"):
            # SCP has no pipelining: Eq 1 is exact.
            assert pct == pytest.approx(100.0, abs=0.1)
        else:
            # "The practical compaction bandwidth speedup is lower by
            # about 10%" — simulated within [85%, 100%] of ideal at 16
            # sub-tasks, never above.
            assert 85.0 <= pct <= 100.0 + 1e-6

